#include "index/index_manager.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "xpath/value_compare.h"

namespace pxq::index {
namespace {

void SortedInsert(std::vector<NodeId>* v, NodeId n) {
  auto it = std::lower_bound(v->begin(), v->end(), n);
  if (it == v->end() || *it != n) v->insert(it, n);
}

void SortedErase(std::vector<NodeId>* v, NodeId n) {
  auto it = std::lower_bound(v->begin(), v->end(), n);
  if (it != v->end() && *it == n) v->erase(it);
}

void SidecarErase(std::multimap<double, NodeId>* m, double key, NodeId n) {
  auto [lo, hi] = m->equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == n) {
      m->erase(it);
      return;
    }
  }
}

int RoundShards(int requested) {
  int n = 1;
  while (n < requested && n < 256) n <<= 1;
  return n;
}

const std::vector<PreId> kEmptyPres;

/// Value-index view of one element: simple (no element children) plus
/// the concatenation of its text children — which for a simple element
/// IS its XPath string value, since comments and PIs contain no text
/// descendants.
struct Derived {
  bool simple = true;
  std::string value;
};

Derived DeriveValue(const storage::PagedStore& store, PreId pre) {
  Derived d;
  const PreId end = pre + store.SizeAt(pre);
  for (PreId c = store.SkipHoles(pre + 1); c <= end;
       c = store.SkipHoles(c + store.SizeAt(c) + 1)) {
    switch (store.KindAt(c)) {
      case NodeKind::kElement:
        d.simple = false;
        d.value.clear();
        return d;
      case NodeKind::kText:
        d.value += store.pools().Text(store.RefAt(c));
        break;
      default:
        break;
    }
  }
  return d;
}

}  // namespace

IndexManager::IndexManager(IndexConfig config)
    : config_(config), nshards_(RoundShards(std::max(1, config.shards))) {
  config_.shards = nshards_;
  config_.path_chain_depth =
      std::clamp(config_.path_chain_depth, 2, kMaxChainDepth);
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(nshards_));
  owned_snaps_.resize(static_cast<size_t>(nshards_));
  for (int i = 0; i < nshards_; ++i) {
    owned_snaps_[static_cast<size_t>(i)] = std::make_shared<ShardSnapshot>();
    shards_[i].snap.store(owned_snaps_[static_cast<size_t>(i)].get(),
                          std::memory_order_release);
  }
}

IndexManager::~IndexManager() {
  for (int i = 0; i < nshards_; ++i) {
    const MemoTable* t = shards_[i].memo.load(std::memory_order_acquire);
    while (t != nullptr) {
      const MemoTable* prev = t->prev;
      delete t;
      t = prev;
    }
  }
}

// ---------------------------------------------------------------------------
// Writer side: copy-on-write staging + publication
// ---------------------------------------------------------------------------

IndexManager::ShardBuilder& IndexManager::BuilderFor(
    std::vector<ShardBuilder>& bs, QnameId qn) {
  ShardBuilder& b = bs[static_cast<size_t>(ShardOf(qn))];
  if (!b.next) {
    // Copy the outer maps; every bucket stays shared until touched.
    b.next = std::make_shared<ShardSnapshot>(*Snap(ShardOf(qn)));
  }
  b.touched = true;
  return b;
}

IndexManager::Postings* IndexManager::MutablePostings(
    std::vector<ShardBuilder>& bs, QnameId qn) {
  ShardBuilder& b = BuilderFor(bs, qn);
  auto it = b.post.find(qn);
  if (it == b.post.end()) {
    auto cur = b.next->postings.find(qn);
    auto fresh = cur == b.next->postings.end()
                     ? std::make_shared<Postings>()
                     : std::make_shared<Postings>(*cur->second);
    fresh->gen = ++next_gen_;  // new bucket identity for memo validation
    it = b.post.emplace(qn, std::move(fresh)).first;
  }
  return it->second.get();
}

IndexManager::ValueBucket* IndexManager::MutableValues(
    std::vector<ShardBuilder>& bs, QnameId qn) {
  ShardBuilder& b = BuilderFor(bs, qn);
  auto it = b.val.find(qn);
  if (it == b.val.end()) {
    auto cur = b.next->values.find(qn);
    auto fresh = cur == b.next->values.end()
                     ? std::make_shared<ValueBucket>()
                     : std::make_shared<ValueBucket>(*cur->second);
    it = b.val.emplace(qn, std::move(fresh)).first;
  }
  return it->second.get();
}

IndexManager::AttrBucket* IndexManager::MutableAttrs(
    std::vector<ShardBuilder>& bs, QnameId qn) {
  ShardBuilder& b = BuilderFor(bs, qn);
  auto it = b.attr.find(qn);
  if (it == b.attr.end()) {
    auto cur = b.next->attrs.find(qn);
    auto fresh = cur == b.next->attrs.end()
                     ? std::make_shared<AttrBucket>()
                     : std::make_shared<AttrBucket>(*cur->second);
    it = b.attr.emplace(qn, std::move(fresh)).first;
  }
  return it->second.get();
}

IndexManager::Postings* IndexManager::MutablePaths(
    std::vector<ShardBuilder>& bs, const ChainKey& key) {
  ShardBuilder& b = BuilderFor(bs, key.qn[0]);  // chains shard by self qname
  auto it = b.path.find(key);
  if (it == b.path.end()) {
    auto cur = b.next->paths.find(key);
    auto fresh = cur == b.next->paths.end()
                     ? std::make_shared<Postings>()
                     : std::make_shared<Postings>(*cur->second);
    fresh->gen = ++next_gen_;
    it = b.path.emplace(key, std::move(fresh)).first;
  }
  return it->second.get();
}

std::array<QnameId, IndexManager::kMaxChainDepth - 1> IndexManager::AncTagsOf(
    const storage::PagedStore& store, PreId pre) const {
  std::array<QnameId, kMaxChainDepth - 1> anc;
  anc.fill(-1);
  // AncestorChain returns root..parent; ancestor at distance i+1 is the
  // (i+1)-th element from the back.
  std::vector<PreId> chain = store.AncestorChain(pre);
  const int depth = config_.path_chain_depth - 1;
  for (int i = 0; i < depth && i < static_cast<int>(chain.size()); ++i) {
    anc[static_cast<size_t>(i)] =
        store.RefAt(chain[chain.size() - 1 - static_cast<size_t>(i)]);
  }
  return anc;
}

void IndexManager::AddChainEntries(std::vector<ShardBuilder>& bs, NodeId node,
                                   const NodeState& st) {
  ChainKey key;
  key.qn[0] = st.qn;
  for (int len = 2; len <= config_.path_chain_depth; ++len) {
    key.qn[static_cast<size_t>(len - 1)] = st.anc[static_cast<size_t>(len - 2)];
    key.len = static_cast<uint8_t>(len);
    SortedInsert(&MutablePaths(bs, key)->nodes, node);
  }
}

void IndexManager::RemoveChainEntries(std::vector<ShardBuilder>& bs,
                                      NodeId node, const NodeState& st) {
  ChainKey key;
  key.qn[0] = st.qn;
  for (int len = 2; len <= config_.path_chain_depth; ++len) {
    key.qn[static_cast<size_t>(len - 1)] = st.anc[static_cast<size_t>(len - 2)];
    key.len = static_cast<uint8_t>(len);
    SortedErase(&MutablePaths(bs, key)->nodes, node);
  }
}

void IndexManager::AddValueEntry(ValueBucket* vb,
                                 const storage::PagedStore& store,
                                 NodeId node, PreId pre, NodeState* st) {
  Derived d = DeriveValue(store, pre);
  const uint64_t g = ++next_gen_;
  if (d.simple) {
    st->simple = true;
    st->value = std::move(d.value);
    st->numeric = xpath::detail::ParseNumber(st->value, &st->num);
    ValueEntry& e = vb->by_string[st->value];
    e.numeric = st->numeric;
    SortedInsert(&e.nodes, node);
    e.gen = g;
    vb->range_gen = g;
    if (st->numeric) {
      vb->by_number.emplace(st->num, node);
      vb->num_gen = g;
      HistInsert(&vb->hist, st->num, vb->by_number);
    }
  } else {
    st->simple = false;
    st->value.clear();
    st->numeric = false;
    SortedInsert(&vb->complex_elems, node);
    vb->complex_gen = g;
  }
}

void IndexManager::RemoveValueEntry(ValueBucket* vb, NodeId node,
                                    const NodeState& st) {
  const uint64_t g = ++next_gen_;
  if (st.simple) {
    auto eit = vb->by_string.find(st.value);
    if (eit != vb->by_string.end()) {
      SortedErase(&eit->second.nodes, node);
      if (eit->second.nodes.empty()) {
        vb->by_string.erase(eit);  // memo sees gen 0 for the vanished key
      } else {
        eit->second.gen = g;
      }
      vb->range_gen = g;
    }
    if (st.numeric) {
      SidecarErase(&vb->by_number, st.num, node);
      vb->num_gen = g;
      vb->range_gen = g;
      HistRemove(&vb->hist, st.num);
    }
  } else {
    SortedErase(&vb->complex_elems, node);
    vb->complex_gen = g;
  }
}

void IndexManager::AddAttrEntries(std::vector<ShardBuilder>& bs,
                                  const storage::PagedStore& store,
                                  NodeId node, NodeState* st) {
  std::vector<int32_t> rows;
  store.attrs().Lookup(node, &rows);
  for (int32_t r : rows) {
    const storage::AttrRow& row = store.attrs().row(r);
    AttrState as;
    as.qn = row.qname;
    as.value = store.pools().Prop(row.prop);
    as.numeric = xpath::detail::ParseNumber(as.value, &as.num);
    AttrBucket* ab = MutableAttrs(bs, as.qn);
    const uint64_t g = ++next_gen_;
    SortedInsert(&ab->owners, node);
    ab->owners_gen = g;
    ValueEntry& e = ab->by_string[as.value];
    e.numeric = as.numeric;
    SortedInsert(&e.nodes, node);
    e.gen = g;
    ab->range_gen = g;
    if (as.numeric) {
      ab->by_number.emplace(as.num, node);
      ab->num_gen = g;
      HistInsert(&ab->hist, as.num, ab->by_number);
    }
    st->attrs.push_back(std::move(as));
  }
}

void IndexManager::RemoveAttrEntries(std::vector<ShardBuilder>& bs,
                                     NodeId node, const NodeState& st) {
  for (const AttrState& as : st.attrs) {
    AttrBucket* ab = MutableAttrs(bs, as.qn);
    const uint64_t g = ++next_gen_;
    SortedErase(&ab->owners, node);
    ab->owners_gen = g;
    auto eit = ab->by_string.find(as.value);
    if (eit != ab->by_string.end()) {
      SortedErase(&eit->second.nodes, node);
      if (eit->second.nodes.empty()) {
        ab->by_string.erase(eit);
      } else {
        eit->second.gen = g;
      }
      ab->range_gen = g;
    }
    if (as.numeric) {
      SidecarErase(&ab->by_number, as.num, node);
      ab->num_gen = g;
      ab->range_gen = g;
      HistRemove(&ab->hist, as.num);
    }
  }
}

void IndexManager::HistInsert(NumericHistogram* h, double v,
                              const std::multimap<double, NodeId>& sidecar) {
  if (!std::isfinite(v)) return;  // estimate-only: skip unbucketables
  if (h->total == 0) {
    *h = NumericHistogram();
    h->lo = h->hi = v;
    h->counts[0] = 1;
    h->total = 1;
    return;
  }
  if (v < h->lo || v > h->hi) {
    // Out of bounds: widen (bounds only ever grow) and recount from the
    // sidecar, which already contains v — rare after warmup, and the
    // writer holds the sidecar in hand anyway.
    NumericHistogram next;
    next.lo = std::min(h->lo, v);
    next.hi = std::max(h->hi, v);
    for (const auto& [x, n] : sidecar) {
      if (!std::isfinite(x)) continue;
      next.counts[static_cast<size_t>(next.BucketOf(x))] += 1;
      next.total += 1;
    }
    *h = next;
    return;
  }
  h->counts[static_cast<size_t>(h->BucketOf(v))] += 1;
  h->total += 1;
}

void IndexManager::HistRemove(NumericHistogram* h, double v) {
  if (!std::isfinite(v) || h->total == 0) return;
  int64_t& c = h->counts[static_cast<size_t>(h->BucketOf(v))];
  if (c > 0) c -= 1;
  h->total -= 1;
  if (h->total == 0) *h = NumericHistogram();  // re-seed bounds next insert
}

void IndexManager::AddNode(std::vector<ShardBuilder>& bs,
                           const storage::PagedStore& store, NodeId node,
                           PreId pre,
                           const std::array<QnameId, kMaxChainDepth - 1>& anc) {
  NodeState st;
  st.qn = store.RefAt(pre);
  st.anc = anc;
  SortedInsert(&MutablePostings(bs, st.qn)->nodes, node);
  AddChainEntries(bs, node, st);
  AddValueEntry(MutableValues(bs, st.qn), store, node, pre, &st);
  AddAttrEntries(bs, store, node, &st);
  node_state_[node] = std::move(st);
}

void IndexManager::RemoveNode(std::vector<ShardBuilder>& bs, NodeId node) {
  auto it = node_state_.find(node);
  if (it == node_state_.end()) return;
  const NodeState& st = it->second;

  SortedErase(&MutablePostings(bs, st.qn)->nodes, node);
  RemoveChainEntries(bs, node, st);
  RemoveValueEntry(MutableValues(bs, st.qn), node, st);
  RemoveAttrEntries(bs, node, st);
  node_state_.erase(it);
}

void IndexManager::PruneMemos() {
  // Exclusive window: no reader holds a memo table pointer, so every
  // table except the newest can be reclaimed — and a table that hit
  // the value-key admission cap is dropped wholesale, so memoization
  // of new literals resumes instead of staying disabled forever (the
  // hot entries re-admit on their next probe).
  for (int i = 0; i < nshards_; ++i) {
    const MemoTable* newest = shards_[i].memo.load(std::memory_order_acquire);
    if (newest == nullptr) continue;
    const MemoTable* t = newest->prev;
    while (t != nullptr) {
      const MemoTable* prev = t->prev;
      delete t;
      t = prev;
    }
    if (newest->value_entries >= kValueMemoCapPerShard) {
      shards_[i].memo.store(nullptr, std::memory_order_release);
      delete newest;
    } else {
      const_cast<MemoTable*>(newest)->prev = nullptr;
    }
  }
}

void IndexManager::Publish(std::vector<ShardBuilder>& bs, bool structural) {
  for (int i = 0; i < nshards_; ++i) {
    ShardBuilder& b = bs[static_cast<size_t>(i)];
    if (!b.touched) continue;
    // Install privatized buckets; empty buckets drop their key so probe
    // misses stay O(1) map lookups and memory is reclaimed.
    for (auto& [qn, p] : b.post) {
      if (p->nodes.empty()) b.next->postings.erase(qn);
      else b.next->postings[qn] = std::move(p);
    }
    for (auto& [qn, v] : b.val) {
      if (v->empty()) b.next->values.erase(qn);
      else b.next->values[qn] = std::move(v);
    }
    for (auto& [qn, a] : b.attr) {
      if (a->empty()) b.next->attrs.erase(qn);
      else b.next->attrs[qn] = std::move(a);
    }
    for (auto& [key, p] : b.path) {
      if (p->nodes.empty()) b.next->paths.erase(key);
      else b.next->paths[key] = std::move(p);
    }
    shards_[i].snap.store(b.next.get(), std::memory_order_release);
    // Reclaim the previous snapshot: the exclusive window guarantees no
    // probe still reads it.
    owned_snaps_[static_cast<size_t>(i)] = std::move(b.next);
  }
  PruneMemos();
  if (structural) {
    // Pre ranks shifted: every memoized materialization is stale. Memo
    // entries self-invalidate via the epoch check; no table touch here.
    structure_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  publish_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void IndexManager::Rebuild(const storage::PagedStore& store) {
  const auto t0 = std::chrono::steady_clock::now();
  MutexLock lock(&writer_mu_);
  node_state_.clear();
  std::vector<ShardBuilder> bs(static_cast<size_t>(nshards_));
  for (int i = 0; i < nshards_; ++i) {
    // Start every shard from scratch (not from the current snapshot).
    bs[static_cast<size_t>(i)].next = std::make_shared<ShardSnapshot>();
    bs[static_cast<size_t>(i)].touched = true;
  }
  if (config_.enabled) {
    // Pre-order walk tracking the enclosing element chain, so each
    // element's parent qname is O(1) instead of an ancestor descent.
    struct Enclosing {
      PreId end;
      QnameId qn;
    };
    std::vector<Enclosing> stack;
    const PreId end = store.view_size();
    for (PreId p = store.SkipHoles(0); p < end; p = store.SkipHoles(p + 1)) {
      while (!stack.empty() && p > stack.back().end) stack.pop_back();
      if (store.KindAt(p) != NodeKind::kElement) continue;
      // The enclosing-element stack IS the ancestor chain: the nearest
      // k-1 tags come off its back, no per-node store walk.
      std::array<QnameId, kMaxChainDepth - 1> anc;
      anc.fill(-1);
      const int depth = config_.path_chain_depth - 1;
      for (int i = 0; i < depth && i < static_cast<int>(stack.size()); ++i) {
        anc[static_cast<size_t>(i)] =
            stack[stack.size() - 1 - static_cast<size_t>(i)].qn;
      }
      AddNode(bs, store, store.NodeAt(p), p, anc);
      stack.push_back({p + store.SizeAt(p), store.RefAt(p)});
    }
  }
  Publish(bs, /*structural=*/true);
  maintenance_ops_ = 0;
  applied_commits_ = 0;
  build_micros_ = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
}

void IndexManager::ApplyDirty(const storage::PagedStore& store,
                              const DeltaIndex& delta) {
  if (!config_.enabled) return;
  // An empty dirty set means no structural/value/attr mutation happened
  // (every pre-shifting primitive marks at least one node), so nothing
  // to publish and the memoized pre-lists are still valid.
  if (delta.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();
  MutexLock lock(&writer_mu_);
  std::vector<ShardBuilder> bs(static_cast<size_t>(nshards_));
  std::vector<NodeId> work = delta.dirty();
  std::vector<uint8_t> kinds;
  kinds.reserve(work.size());
  for (NodeId n : work) kinds.push_back(delta.KindOf(n));
  for (size_t i = 0; i < work.size(); ++i) {
    const NodeId n = work[i];
    const uint8_t kind = kinds[i];
    auto st = node_state_.find(n);
    const bool known = st != node_state_.end();

    // Granular path for value-/attr-/chain-only dirt: the node's qname
    // postings membership is provably unchanged, so leave that bucket
    // (and every warm memo entry sourced from it) alone and refresh
    // just the sides the kind mask names. Falls through to the full
    // path on any surprise (unknown node, vanished node, rival
    // rename) — the full re-derive is always correct, just coarser.
    if ((kind & DeltaIndex::kEntry) == 0 && known &&
        store.PosOfNode(n) != kNullPos) {
      auto gpre = store.PreOfNode(n);
      if (gpre.ok() && store.KindAt(gpre.value()) == NodeKind::kElement &&
          store.RefAt(gpre.value()) == st->second.qn) {
        if ((kind & DeltaIndex::kPath) != 0) {
          // An ancestor within k-1 levels was renamed: re-key the
          // chain entries from the merged base. Skipped when the
          // recomputed ancestor tags match the reverse map — a
          // duplicate expansion (nested renames) must not bump bucket
          // generations and shoot down warm chain memos for nothing.
          auto anc = AncTagsOf(store, gpre.value());
          if (anc != st->second.anc) {
            RemoveChainEntries(bs, n, st->second);
            st->second.anc = anc;
            AddChainEntries(bs, n, st->second);
          }
        }
        if ((kind & DeltaIndex::kValue) != 0) {
          ValueBucket* vb = MutableValues(bs, st->second.qn);
          RemoveValueEntry(vb, n, st->second);
          AddValueEntry(vb, store, n, gpre.value(), &st->second);
        }
        if ((kind & DeltaIndex::kAttrs) != 0) {
          // Old keys from the reverse map, new keys from the merged
          // base: a replaced attribute value moves BOTH dictionary
          // keys' generations, so memoized probes of either value
          // invalidate while sibling keys stay warm.
          std::vector<std::pair<QnameId, uint64_t>> prior_owner_gens;
          prior_owner_gens.reserve(st->second.attrs.size());
          for (const AttrState& as : st->second.attrs) {
            prior_owner_gens.emplace_back(
                as.qn, MutableAttrs(bs, as.qn)->owners_gen);
          }
          RemoveAttrEntries(bs, n, st->second);
          st->second.attrs.clear();
          AddAttrEntries(bs, store, n, &st->second);
          // An attribute the node owns both before and after (a value
          // replacement, not an add/remove) leaves the owner LIST
          // byte-identical — the remove/re-insert pair cancels out.
          // Restore its pre-commit generation so warm AttrOwners memo
          // entries stay valid; identical content under the same stamp
          // cannot alias anything else (no ABA).
          for (const auto& [qn, gen] : prior_owner_gens) {
            for (const AttrState& na : st->second.attrs) {
              if (na.qn == qn) {
                MutableAttrs(bs, qn)->owners_gen = gen;
                break;
              }
            }
          }
        }
        continue;
      }
    }

    // Detect renames against the reverse map BEFORE removal: the
    // transaction marks only the renamed node, but the chain keys of
    // every element descendant within k-1 levels changed with it.
    // Enumerating that neighborhood from the MERGED base (not the
    // transaction's clone) keeps concurrent commits convergent — a
    // descendant inserted by a rival commit is re-keyed here even
    // though the renamer's clone never saw it.
    QnameId old_qn = -1;
    if (known) old_qn = st->second.qn;
    RemoveNode(bs, n);
    if (store.PosOfNode(n) == kNullPos) continue;  // deleted (or aborted id)
    auto pre = store.PreOfNode(n);
    if (!pre.ok()) continue;
    if (store.KindAt(pre.value()) != NodeKind::kElement) continue;
    if (known && old_qn != store.RefAt(pre.value())) {
      // Re-enqueue the k-1-deep element neighborhood with kPath-only
      // dirt: exactly the chain entries mention the renamed tag, so
      // the descendants' postings/value/attr buckets (and their warm
      // memos) must survive the re-key. Works regardless of the
      // descendant's own marks or processing order — a kPath pass is
      // idempotent (it re-derives the ancestor tags from the merged
      // base and no-ops when they already match the reverse map), so
      // duplicates from nested renames are cheap, and a descendant the
      // same transaction also value-edited or renamed keeps its other
      // kind bits on its own work item.
      const int reach = config_.path_chain_depth - 1;
      const PreId self = pre.value();
      const PreId end = self + store.SizeAt(self);
      const int32_t base_level = store.LevelAt(self);
      for (PreId c = store.SkipHoles(self + 1); c <= end;) {
        const bool is_elem = store.KindAt(c) == NodeKind::kElement;
        const int32_t rel = store.LevelAt(c) - base_level;
        if (is_elem && rel <= reach) {
          work.push_back(store.NodeAt(c));
          kinds.push_back(DeltaIndex::kPath);
        }
        if (is_elem && rel >= reach) {
          // Deeper elements are out of chain reach: skip the subtree.
          c = store.SkipHoles(c + store.SizeAt(c) + 1);
        } else {
          c = store.SkipHoles(c + 1);
        }
      }
    }
    AddNode(bs, store, n, pre.value(), AncTagsOf(store, pre.value()));
  }
  Publish(bs, delta.structural());
  maintenance_ops_ += static_cast<int64_t>(work.size());
  applied_commits_ += 1;
  apply_dirty_ns_.Record(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// ---------------------------------------------------------------------------
// Reader side: lock-free probes over published snapshots
// ---------------------------------------------------------------------------

bool IndexManager::Gate(int64_t candidates, int64_t scan_cost) const {
  if (config_.cross_check) return true;  // always exercise the index
  return static_cast<double>(candidates) <=
         config_.gate_ratio * static_cast<double>(scan_cost);
}

std::vector<PreId> IndexManager::ToPres(const storage::PagedStore& store,
                                        const std::vector<NodeId>& nodes) const {
  std::vector<PreId> pres;
  pres.reserve(nodes.size());
  for (NodeId n : nodes) {
    auto pre = store.PreOfNode(n);
    if (pre.ok()) pres.push_back(pre.value());
  }
  std::sort(pres.begin(), pres.end());
  return pres;
}

const IndexManager::MemoEntry* IndexManager::LookupMemo(
    const Shard& shard, const MemoKey& key) const {
  const MemoTable* memo = shard.memo.load(std::memory_order_acquire);
  if (memo == nullptr) return nullptr;
  auto it = memo->entries.find(key);
  return it == memo->entries.end() ? nullptr : it->second.get();
}

const IndexManager::MemoEntry* IndexManager::PublishMemo(
    const Shard& shard, const MemoKey& key,
    std::shared_ptr<const MemoEntry> entry) const {
  // CAS-publish a new table version. Readers race only with readers
  // (writers prune inside the exclusive window); a loser deletes its
  // never-published candidate and retries against the latest table, so
  // concurrently inserted entries for other keys are never lost.
  // Entries are shared between versions, so each link in the retained
  // chain costs map nodes only, never pre-list copies.
  //
  // Value/attr keys carry user-controlled operands, so their key space
  // is unbounded — and the chain is pruned only inside the exclusive
  // commit window, which a read-only workload never opens. A full
  // table therefore stops admitting NEW value keys (existing keys may
  // still be refreshed in place: same map size), bounding both the
  // retained chain and the per-insert copy cost. Qname/path/chain keys
  // are exempt: their space is bounded by the document's tag
  // structure, and MemoizedPres relies on publication to keep its
  // returned pointer alive.
  const MemoEntry* raw = entry.get();
  const bool value_ns = key.ns != MemoNs::kQname &&
                        key.ns != MemoNs::kPath && key.ns != MemoNs::kChain;
  const MemoTable* cur = shard.memo.load(std::memory_order_acquire);
  for (;;) {
    const bool fresh_key =
        cur == nullptr || cur->entries.find(key) == cur->entries.end();
    if (value_ns && fresh_key && cur != nullptr &&
        cur->value_entries >= kValueMemoCapPerShard) {
      return nullptr;  // table full: serve the result unmemoized
    }
    auto* next = cur ? new MemoTable(*cur) : new MemoTable();
    next->prev = cur;
    next->entries[key] = entry;
    if (value_ns && fresh_key) next->value_entries += 1;
    if (shard.memo.compare_exchange_strong(cur, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      return raw;  // kept alive by the published table chain
    }
    delete next;
  }
}

const std::vector<PreId>* IndexManager::MemoizedPres(
    const Shard& shard, const storage::PagedStore& store, const MemoKey& mk,
    const Postings& src) const {
  const uint64_t sepoch = structure_epoch_.load(std::memory_order_acquire);
  if (const MemoEntry* e = LookupMemo(shard, mk);
      e != nullptr && e->src_gen == src.gen &&
      e->structure_epoch == sepoch) {
    memo_hits_.Inc();
    return &e->pres;
  }
  memo_misses_.Inc();
  auto entry = std::make_shared<MemoEntry>();
  entry->src_gen = src.gen;
  entry->structure_epoch = sepoch;
  entry->candidates = static_cast<int64_t>(src.nodes.size());
  entry->pres = ToPres(store, src.nodes);
  return &PublishMemo(shard, mk, std::move(entry))->pres;
}

IndexManager::MemoKey IndexManager::ValueMemoKey(MemoNs ns, QnameId qn,
                                                 xpath::CmpOp op,
                                                 const std::string& literal) {
  MemoKey mk;
  mk.ns = ns;
  mk.op = static_cast<uint8_t>(op);
  mk.key = static_cast<uint64_t>(static_cast<uint32_t>(qn));
  double x = 0;
  if (op == xpath::CmpOp::kEq &&
      xpath::detail::ParseNumber(literal, &x)) {
    // Numeric equality reads only the sidecar, so the operand
    // canonicalizes to the parsed value: "17" and "17.0" share one
    // entry. Normalize -0 to +0 (they hit the same sidecar range).
    mk.cls = OperandClass::kNumeric;
    if (x == 0) x = 0;
    static_assert(sizeof(x) == sizeof(mk.num_bits));
    std::memcpy(&mk.num_bits, &x, sizeof(x));
  } else {
    // Ordered operators take lexicographic dictionary bounds from the
    // literal's spelling, so the raw string is the operand.
    mk.cls = OperandClass::kString;
    mk.operand = literal;
  }
  return mk;
}

template <typename Bucket>
uint64_t IndexManager::SourceGenFor(const Bucket& b, const MemoKey& key) {
  if (static_cast<xpath::CmpOp>(key.op) == xpath::CmpOp::kEq) {
    if (key.cls == OperandClass::kNumeric) return b.num_gen;
    auto it = b.by_string.find(key.operand);
    return it == b.by_string.end() ? 0 : it->second.gen;
  }
  return b.range_gen;
}

int64_t IndexManager::PostingsCount(QnameId qn) const {
  if (!config_.enabled || qn < 0) return 0;
  const ShardSnapshot* snap = Snap(ShardOf(qn));
  auto it = snap->postings.find(qn);
  return it == snap->postings.end()
             ? 0
             : static_cast<int64_t>(it->second->nodes.size());
}

const std::vector<PreId>* IndexManager::ElementsByQname(
    const storage::PagedStore& store, QnameId qn, int64_t scan_cost) const {
  if (!config_.enabled || qn < 0) return nullptr;
  probes_.Inc();
  const Shard& shard = shards_[ShardOf(qn)];
  const ShardSnapshot* snap = shard.snap.load(std::memory_order_acquire);
  auto it = snap->postings.find(qn);
  const int64_t k = it == snap->postings.end()
                        ? 0
                        : static_cast<int64_t>(it->second->nodes.size());
  if (!Gate(k, scan_cost)) {
    probe_declines_.Inc();
    return nullptr;
  }
  if (it == snap->postings.end()) return &kEmptyPres;
  MemoKey mk;
  mk.ns = MemoNs::kQname;
  mk.key = static_cast<uint64_t>(static_cast<uint32_t>(qn));
  return MemoizedPres(shard, store, mk, *it->second);
}

const std::vector<PreId>* IndexManager::PathPairProbe(
    const storage::PagedStore& store, QnameId parent_qn, QnameId self_qn,
    int64_t scan_cost) const {
  if (self_qn < 0) return nullptr;
  return PathChainProbe(store, {parent_qn, self_qn}, scan_cost);
}

const std::vector<PreId>* IndexManager::PathChainProbe(
    const storage::PagedStore& store, const std::vector<QnameId>& chain,
    int64_t scan_cost) const {
  const size_t len = chain.size();
  if (!config_.enabled || len < 2 ||
      len > static_cast<size_t>(config_.path_chain_depth)) {
    return nullptr;
  }
  if (chain.back() < 0) return nullptr;  // self must be a real tag
  const PaddedCounter& probes = len == 2 ? path_probes_ : chain_probes_;
  const PaddedCounter& declines = len == 2 ? path_declines_ : chain_declines_;
  probes.Inc();
  // chain is in PATH order (farthest ancestor first); the key stores
  // self first.
  ChainKey key;
  key.len = static_cast<uint8_t>(len);
  for (size_t i = 0; i < len; ++i) key.qn[i] = chain[len - 1 - i];
  const Shard& shard = shards_[ShardOf(key.qn[0])];
  const ShardSnapshot* snap = shard.snap.load(std::memory_order_acquire);
  auto it = snap->paths.find(key);
  const int64_t k = it == snap->paths.end()
                        ? 0
                        : static_cast<int64_t>(it->second->nodes.size());
  if (!Gate(k, scan_cost)) {
    declines.Inc();
    return nullptr;
  }
  if (it == snap->paths.end()) return &kEmptyPres;
  MemoKey mk;
  if (len == 2) {
    mk.ns = MemoNs::kPath;
    mk.key = PackedPairOf(key);
  } else {
    // Longer chains carry the raw key bytes as the operand; the chain
    // space is bounded by the document's tag structure, so these keys
    // are exempt from the value-memo admission cap like qname/pair
    // keys.
    mk.ns = MemoNs::kChain;
    mk.cls = OperandClass::kString;
    mk.operand.assign(reinterpret_cast<const char*>(key.qn.data()),
                      len * sizeof(QnameId));
  }
  return MemoizedPres(shard, store, mk, *it->second);
}

void IndexManager::CollectMatches(
    const std::map<std::string, ValueEntry>& dict,
    const std::multimap<double, NodeId>& sidecar, xpath::CmpOp op,
    const std::string& literal, std::vector<NodeId>* out) {
  using xpath::CmpOp;
  double x = 0;
  const bool lit_num = xpath::detail::ParseNumber(literal, &x);

  if (op == CmpOp::kEq) {
    if (lit_num) {
      // Numeric equality ("1.0" matches literal "1"): sidecar only. A
      // non-numeric value can never be byte-equal to a string that
      // parses as a number.
      auto [lo, hi] = sidecar.equal_range(x);
      for (auto it = lo; it != hi; ++it) out->push_back(it->second);
    } else {
      auto it = dict.find(literal);
      if (it != dict.end()) {
        out->insert(out->end(), it->second.nodes.begin(),
                    it->second.nodes.end());
      }
    }
    return;
  }

  // Ordered operator. Numeric literal: numeric values compare through
  // the sidecar, non-numeric values lexicographically. Non-numeric
  // literal: everything compares lexicographically.
  const bool skip_numeric_in_dict = lit_num;
  if (lit_num) {
    std::multimap<double, NodeId>::const_iterator lo, hi;
    switch (op) {
      case CmpOp::kLt:
        lo = sidecar.begin();
        hi = sidecar.lower_bound(x);
        break;
      case CmpOp::kLe:
        lo = sidecar.begin();
        hi = sidecar.upper_bound(x);
        break;
      case CmpOp::kGt:
        lo = sidecar.upper_bound(x);
        hi = sidecar.end();
        break;
      default:  // kGe
        lo = sidecar.lower_bound(x);
        hi = sidecar.end();
        break;
    }
    for (auto it = lo; it != hi; ++it) out->push_back(it->second);
  }
  std::map<std::string, ValueEntry>::const_iterator lo, hi;
  switch (op) {
    case CmpOp::kLt:
      lo = dict.begin();
      hi = dict.lower_bound(literal);
      break;
    case CmpOp::kLe:
      lo = dict.begin();
      hi = dict.upper_bound(literal);
      break;
    case CmpOp::kGt:
      lo = dict.upper_bound(literal);
      hi = dict.end();
      break;
    default:  // kGe
      lo = dict.lower_bound(literal);
      hi = dict.end();
      break;
  }
  for (auto it = lo; it != hi; ++it) {
    if (skip_numeric_in_dict && it->second.numeric) continue;
    out->insert(out->end(), it->second.nodes.begin(),
                it->second.nodes.end());
  }
}

bool IndexManager::ChildValueProbe(const storage::PagedStore& store,
                                   QnameId qn, xpath::CmpOp op,
                                   const std::string& literal,
                                   int64_t scan_cost,
                                   std::vector<PreId>* simple,
                                   std::vector<PreId>* complex_rest) const {
  if (!config_.enabled || qn < 0 || op == xpath::CmpOp::kNe) return false;
  probes_.Inc();
  simple->clear();
  complex_rest->clear();
  const Shard& shard = shards_[ShardOf(qn)];
  const ShardSnapshot* snap = shard.snap.load(std::memory_order_acquire);
  auto vit = snap->values.find(qn);
  if (vit == snap->values.end()) {
    // No element carries this tag: the empty result is exact.
    return true;
  }
  const ValueBucket& vb = *vit->second;
  const uint64_t sepoch = structure_epoch_.load(std::memory_order_acquire);
  MemoKey mk;
  if (config_.memo_values) {
    mk = ValueMemoKey(MemoNs::kValue, qn, op, literal);
    // Count-only (negative-cache) entries validate on generations
    // alone: a candidate COUNT depends only on dictionary content,
    // never on pre ranks, so structural commits that touched other
    // keys leave a warm decline warm.
    if (const MemoEntry* e = LookupMemo(shard, mk);
        e != nullptr && e->src_gen == SourceGenFor(vb, mk) &&
        e->aux_gen == vb.complex_gen &&
        (!e->materialized || e->structure_epoch == sepoch)) {
      if (!Gate(e->candidates, scan_cost)) {
        // Warm decline: the gate ran off the cached count — no
        // CollectMatches, no dictionary walk.
        value_neg_hits_.Inc();
        probe_declines_.Inc();
        return false;
      }
      if (e->materialized) {
        memo_value_hits_.Inc();
        *simple = e->pres;
        *complex_rest = e->complex_pres;
        return true;
      }
      // Count-only entry, but the caller's scan estimate now passes
      // the gate: fall through and materialize.
    }
  }
  std::vector<NodeId> matches;
  CollectMatches(vb.by_string, vb.by_number, op, literal, &matches);
  const int64_t k = static_cast<int64_t>(matches.size()) +
                    static_cast<int64_t>(vb.complex_elems.size());
  if (!Gate(k, scan_cost)) {
    probe_declines_.Inc();
    if (config_.memo_values) {
      // Negative cache (ROADMAP): remember the candidate count so the
      // key's next warm decline skips CollectMatches entirely. The
      // entry invalidates like any other when a commit re-stamps the
      // key's generation.
      auto entry = std::make_shared<MemoEntry>();
      entry->src_gen = SourceGenFor(vb, mk);
      entry->aux_gen = vb.complex_gen;
      entry->structure_epoch = sepoch;
      entry->candidates = k;
      entry->materialized = false;
      PublishMemo(shard, mk, std::move(entry));
    }
    return false;
  }
  *simple = ToPres(store, matches);
  *complex_rest = ToPres(store, vb.complex_elems);
  if (config_.memo_values) {
    memo_value_misses_.Inc();
    auto entry = std::make_shared<MemoEntry>();
    entry->src_gen = SourceGenFor(vb, mk);
    entry->aux_gen = vb.complex_gen;
    entry->structure_epoch = sepoch;
    entry->candidates = k;
    entry->pres = *simple;
    entry->complex_pres = *complex_rest;
    PublishMemo(shard, mk, std::move(entry));
  }
  return true;
}

std::optional<std::vector<PreId>> IndexManager::AttrOwners(
    const storage::PagedStore& store, QnameId qn, int64_t scan_cost) const {
  if (!config_.enabled || qn < 0) return std::nullopt;
  probes_.Inc();
  const Shard& shard = shards_[ShardOf(qn)];
  const ShardSnapshot* snap = shard.snap.load(std::memory_order_acquire);
  auto it = snap->attrs.find(qn);
  if (it == snap->attrs.end()) return std::vector<PreId>{};
  const AttrBucket& ab = *it->second;
  const int64_t k = static_cast<int64_t>(ab.owners.size());
  if (!Gate(k, scan_cost)) {
    probe_declines_.Inc();
    return std::nullopt;
  }
  const uint64_t sepoch = structure_epoch_.load(std::memory_order_acquire);
  MemoKey mk;
  mk.ns = MemoNs::kAttrOwners;
  mk.key = static_cast<uint64_t>(static_cast<uint32_t>(qn));
  if (config_.memo_values) {
    if (const MemoEntry* e = LookupMemo(shard, mk);
        e != nullptr && e->src_gen == ab.owners_gen &&
        e->structure_epoch == sepoch) {
      memo_value_hits_.Inc();
      return e->pres;
    }
  }
  std::vector<PreId> pres = ToPres(store, ab.owners);
  if (config_.memo_values) {
    memo_value_misses_.Inc();
    auto entry = std::make_shared<MemoEntry>();
    entry->src_gen = ab.owners_gen;
    entry->structure_epoch = sepoch;
    entry->candidates = k;
    entry->pres = pres;
    PublishMemo(shard, mk, std::move(entry));
  }
  return pres;
}

std::optional<std::vector<PreId>> IndexManager::AttrValueProbe(
    const storage::PagedStore& store, QnameId qn, xpath::CmpOp op,
    const std::string& literal, int64_t scan_cost) const {
  if (!config_.enabled || qn < 0 || op == xpath::CmpOp::kNe) {
    return std::nullopt;
  }
  probes_.Inc();
  const Shard& shard = shards_[ShardOf(qn)];
  const ShardSnapshot* snap = shard.snap.load(std::memory_order_acquire);
  auto it = snap->attrs.find(qn);
  if (it == snap->attrs.end()) return std::vector<PreId>{};
  const AttrBucket& ab = *it->second;
  const uint64_t sepoch = structure_epoch_.load(std::memory_order_acquire);
  MemoKey mk;
  if (config_.memo_values) {
    mk = ValueMemoKey(MemoNs::kAttrValue, qn, op, literal);
    // Same negative-cache protocol as ChildValueProbe: count-only
    // entries validate on the key generation alone.
    if (const MemoEntry* e = LookupMemo(shard, mk);
        e != nullptr && e->src_gen == SourceGenFor(ab, mk) &&
        (!e->materialized || e->structure_epoch == sepoch)) {
      if (!Gate(e->candidates, scan_cost)) {
        value_neg_hits_.Inc();
        probe_declines_.Inc();
        return std::nullopt;
      }
      if (e->materialized) {
        memo_value_hits_.Inc();
        return e->pres;
      }
    }
  }
  std::vector<NodeId> matches;
  CollectMatches(ab.by_string, ab.by_number, op, literal, &matches);
  const int64_t k = static_cast<int64_t>(matches.size());
  if (!Gate(k, scan_cost)) {
    probe_declines_.Inc();
    if (config_.memo_values) {
      auto entry = std::make_shared<MemoEntry>();
      entry->src_gen = SourceGenFor(ab, mk);
      entry->structure_epoch = sepoch;
      entry->candidates = k;
      entry->materialized = false;
      PublishMemo(shard, mk, std::move(entry));
    }
    return std::nullopt;
  }
  std::vector<PreId> pres = ToPres(store, matches);
  if (config_.memo_values) {
    memo_value_misses_.Inc();
    auto entry = std::make_shared<MemoEntry>();
    entry->src_gen = SourceGenFor(ab, mk);
    entry->structure_epoch = sepoch;
    entry->candidates = k;
    entry->pres = pres;
    PublishMemo(shard, mk, std::move(entry));
  }
  return pres;
}

void IndexManager::NoteCrossCheckMismatch() const {
  cross_check_mismatches_.Inc();
}

// ---------------------------------------------------------------------------
// Cardinality statistics: lock-free stat reads off published snapshots
// ---------------------------------------------------------------------------

int64_t IndexManager::HistEstimate(const NumericHistogram& h, xpath::CmpOp op,
                                   double x) {
  using xpath::CmpOp;
  if (h.total == 0) return 0;
  if (op == CmpOp::kEq) {
    if (x < h.lo || x > h.hi) return 0;
    return h.counts[static_cast<size_t>(h.BucketOf(x))];
  }
  if (!(h.hi > h.lo)) {
    // Degenerate single-point histogram: all or nothing.
    const bool match = (op == CmpOp::kLt && h.lo < x) ||
                       (op == CmpOp::kLe && h.lo <= x) ||
                       (op == CmpOp::kGt && h.lo > x) ||
                       (op == CmpOp::kGe && h.lo >= x);
    return match ? h.total : 0;
  }
  const bool below_op = op == CmpOp::kLt || op == CmpOp::kLe;
  if (x <= h.lo) return below_op ? 0 : h.total;
  if (x >= h.hi) return below_op ? h.total : 0;
  // Whole buckets below x plus a uniform share of the boundary bucket.
  const int b = h.BucketOf(x);
  const double width = (h.hi - h.lo) / NumericHistogram::kBuckets;
  const double frac = width > 0 ? (x - (h.lo + b * width)) / width : 0.0;
  double below = 0;
  for (int i = 0; i < b; ++i) {
    below += static_cast<double>(h.counts[static_cast<size_t>(i)]);
  }
  below += static_cast<double>(h.counts[static_cast<size_t>(b)]) * frac;
  const double est =
      below_op ? below : static_cast<double>(h.total) - below;
  return static_cast<int64_t>(est + 0.5);
}

IndexManager::KeyStats IndexManager::DictStats(
    const std::map<std::string, ValueEntry>& dict,
    const std::multimap<double, NodeId>& sidecar, const NumericHistogram& hist,
    xpath::CmpOp op, const std::string& literal) {
  using xpath::CmpOp;
  KeyStats ks;
  if (op == CmpOp::kNe) return ks;  // anti-join: probes decline it too
  double x = 0;
  const bool lit_num = xpath::detail::ParseNumber(literal, &x);
  if (op == CmpOp::kEq) {
    ks.known = true;
    if (lit_num) {
      // Canonicalize exactly like ValueMemoKey: the parsed double IS
      // the operand ("17" == "17.0"), -0 normalizes to +0 — so every
      // spelling of one number lands in the same histogram bucket
      // instead of splitting the estimate across spellings.
      if (x == 0) x = 0;
      ks.count = HistEstimate(hist, CmpOp::kEq, x);
      // A bucket count is an upper bound, not a key read — except the
      // no-numerics case, where zero is exact (a numeric literal can
      // never byte-equal a non-numeric value).
      ks.exact = hist.total == 0;
      (void)sidecar;
      return ks;
    }
    auto it = dict.find(literal);
    ks.count =
        it == dict.end() ? 0 : static_cast<int64_t>(it->second.nodes.size());
    ks.exact = true;
    return ks;
  }
  // Ordered operator: the numeric side comes off the histogram; a
  // non-numeric literal compares lexicographically against the whole
  // dictionary, which has no order statistics — unknown, the caller
  // keeps syntactic order.
  if (!lit_num) return ks;
  ks.known = true;
  ks.exact = false;
  ks.count = HistEstimate(hist, op, x);
  return ks;
}

IndexManager::KeyStats IndexManager::ChainStats(
    const std::vector<QnameId>& chain) const {
  KeyStats ks;
  const size_t len = chain.size();
  if (!config_.enabled || len < 1 ||
      len > static_cast<size_t>(config_.path_chain_depth)) {
    return ks;
  }
  if (chain.back() < 0) return ks;  // self must be a real tag
  estimator_probes_.Inc();
  if (len == 1) {
    // Single tag: the qname posting length (degree-constraint input).
    const QnameId qn = chain[0];
    const ShardSnapshot* snap = Snap(ShardOf(qn));
    auto it = snap->postings.find(qn);
    ks.count = it == snap->postings.end()
                   ? 0
                   : static_cast<int64_t>(it->second->nodes.size());
    ks.exact = true;
    ks.known = true;
    return ks;
  }
  // Same key construction as PathChainProbe: chain is in PATH order
  // (farthest ancestor first), the key stores self first.
  ChainKey key;
  key.len = static_cast<uint8_t>(len);
  for (size_t i = 0; i < len; ++i) key.qn[i] = chain[len - 1 - i];
  const ShardSnapshot* snap = Snap(ShardOf(key.qn[0]));
  auto it = snap->paths.find(key);
  ks.count = it == snap->paths.end()
                 ? 0
                 : static_cast<int64_t>(it->second->nodes.size());
  ks.exact = true;
  ks.known = true;
  return ks;
}

IndexManager::KeyStats IndexManager::ValueStats(
    QnameId qn, xpath::CmpOp op, const std::string& literal) const {
  KeyStats ks;
  if (!config_.enabled || qn < 0) return ks;
  estimator_probes_.Inc();
  const ShardSnapshot* snap = Snap(ShardOf(qn));
  auto it = snap->values.find(qn);
  if (it == snap->values.end()) {
    // No element carries this tag: zero, exactly.
    ks.known = true;
    ks.exact = true;
    return ks;
  }
  const ValueBucket& vb = *it->second;
  ks = DictStats(vb.by_string, vb.by_number, vb.hist, op, literal);
  if (ks.known && !vb.complex_elems.empty()) {
    // Complex elements ride every candidate set (evaluated per node
    // regardless of the operand), so they bound the estimate upward.
    ks.count += static_cast<int64_t>(vb.complex_elems.size());
    ks.exact = false;
  }
  return ks;
}

IndexManager::KeyStats IndexManager::AttrStats(
    QnameId qn, bool any_value, xpath::CmpOp op,
    const std::string& literal) const {
  KeyStats ks;
  if (!config_.enabled || qn < 0) return ks;
  estimator_probes_.Inc();
  const ShardSnapshot* snap = Snap(ShardOf(qn));
  auto it = snap->attrs.find(qn);
  if (it == snap->attrs.end()) {
    ks.known = true;
    ks.exact = true;
    return ks;
  }
  const AttrBucket& ab = *it->second;
  if (any_value) {
    ks.count = static_cast<int64_t>(ab.owners.size());
    ks.exact = true;
    ks.known = true;
    return ks;
  }
  return DictStats(ab.by_string, ab.by_number, ab.hist, op, literal);
}

void IndexManager::RecordEstimateError(int64_t est, int64_t act) const {
  // +1 on both sides guards log2(0); scaled so 100 == off by 2x.
  const double ratio = std::log2((static_cast<double>(act) + 1.0) /
                                 (static_cast<double>(est) + 1.0));
  est_error_.Record(static_cast<int64_t>(std::abs(ratio) * 100.0 + 0.5));
}

IndexStats IndexManager::Stats() const {
  IndexStats s;
  // Hits are derived as probes - declines from two independent relaxed
  // counters. Read each family's DECLINES first: a probe increments its
  // probe counter before (possibly) its decline counter, so
  // declines-then-probes guarantees declines_read <= probes_read and
  // the derived hits can never transiently dip below the true value or
  // go negative mid-traffic (the reverse order could read a decline
  // whose probe increment it then missed).
  const int64_t probe_declines = probe_declines_.Value();
  s.probes = probes_.Value();
  s.probe_hits = s.probes - probe_declines;
  const int64_t path_declines = path_declines_.Value();
  s.path_probes = path_probes_.Value();
  s.path_hits = s.path_probes - path_declines;
  const int64_t chain_declines = chain_declines_.Value();
  s.chain_probes = chain_probes_.Value();
  s.chain_hits = s.chain_probes - chain_declines;
  s.value_neg_hits = value_neg_hits_.Value();
  s.child_step_hits = child_step_hits_.Value();
  s.memo_hits = memo_hits_.Value();
  s.memo_misses = memo_misses_.Value();
  s.memo_value_hits = memo_value_hits_.Value();
  s.memo_value_misses = memo_value_misses_.Value();
  s.cross_check_mismatches = cross_check_mismatches_.Value();
  s.estimator_probes = estimator_probes_.Value();
  s.plan_reorders = plan_reorders_.Value();
  s.shards = nshards_;
  s.publish_epoch =
      static_cast<int64_t>(publish_epoch_.load(std::memory_order_acquire));
  s.structure_epoch =
      static_cast<int64_t>(structure_epoch_.load(std::memory_order_acquire));
  // Structure walk under writer_mu_: publication both swaps and
  // reclaims snapshots, so Stats() must not chase the raw pointers
  // concurrently with a writer.
  MutexLock lock(&writer_mu_);
  s.build_micros = build_micros_;
  s.maintenance_ops = maintenance_ops_;
  s.applied_commits = applied_commits_;
  s.node_states = static_cast<int64_t>(node_state_.size());
  int64_t bytes = 0;
  for (const auto& [n, st] : node_state_) {
    bytes += static_cast<int64_t>(sizeof(NodeState)) +
             static_cast<int64_t>(st.value.size()) +
             static_cast<int64_t>(st.attrs.size()) * 48;
  }
  for (const auto& owned : owned_snaps_) {
    const ShardSnapshot& snap = *owned;
    s.qname_keys += static_cast<int64_t>(snap.postings.size());
    for (const auto& [qn, p] : snap.postings) {
      s.postings_entries += static_cast<int64_t>(p->nodes.size());
      bytes += static_cast<int64_t>(p->nodes.size()) * 8;
    }
    for (const auto& [key, p] : snap.paths) {
      if (key.len == 2) {
        s.path_keys += 1;
      } else {
        s.chain_keys += 1;
        s.chain_postings += static_cast<int64_t>(p->nodes.size());
      }
      bytes += static_cast<int64_t>(p->nodes.size()) * 8 +
               static_cast<int64_t>(sizeof(ChainKey));
    }
    // Every posting/path bucket is a stat key (its length IS its
    // cardinality stat); dictionary keys and owner lists join below.
    s.stat_keys += static_cast<int64_t>(snap.postings.size()) +
                   static_cast<int64_t>(snap.paths.size());
    for (const auto& [qn, vbp] : snap.values) {
      const ValueBucket& vb = *vbp;
      s.value_keys += static_cast<int64_t>(vb.by_string.size());
      s.complex_entries += static_cast<int64_t>(vb.complex_elems.size());
      s.stat_keys += static_cast<int64_t>(vb.by_string.size());
      for (const int64_t c : vb.hist.counts) {
        if (c > 0) s.histogram_buckets += 1;
      }
      for (const auto& [v, e] : vb.by_string) {
        bytes += static_cast<int64_t>(v.size()) + 48 +
                 static_cast<int64_t>(e.nodes.size()) * 8;
      }
      bytes += static_cast<int64_t>(vb.by_number.size()) * 48 +
               static_cast<int64_t>(vb.complex_elems.size()) * 8;
    }
    for (const auto& [qn, abp] : snap.attrs) {
      const AttrBucket& ab = *abp;
      s.attr_value_keys += static_cast<int64_t>(ab.by_string.size());
      s.stat_keys += static_cast<int64_t>(ab.by_string.size()) + 1;
      for (const int64_t c : ab.hist.counts) {
        if (c > 0) s.histogram_buckets += 1;
      }
      for (const auto& [v, e] : ab.by_string) {
        bytes += static_cast<int64_t>(v.size()) + 48 +
                 static_cast<int64_t>(e.nodes.size()) * 8;
      }
      bytes += static_cast<int64_t>(ab.by_number.size()) * 48 +
               static_cast<int64_t>(ab.owners.size()) * 8;
    }
  }
  s.bytes = bytes;
  return s;
}

void IndexManager::RegisterMetrics(obs::MetricsRegistry* reg) const {
  // Counters: the registry references the SAME padded atomics the
  // lock-free probe paths bump — snapshots read them directly.
  reg->RegisterCounter("pxq_index_probes_total", &probes_);
  reg->RegisterCounter("pxq_index_probe_declines_total", &probe_declines_);
  reg->RegisterCounter("pxq_index_path_probes_total", &path_probes_);
  reg->RegisterCounter("pxq_index_path_declines_total", &path_declines_);
  reg->RegisterCounter("pxq_index_chain_probes_total", &chain_probes_);
  reg->RegisterCounter("pxq_index_chain_declines_total", &chain_declines_);
  reg->RegisterCounter("pxq_index_child_step_hits_total", &child_step_hits_);
  reg->RegisterCounter("pxq_index_memo_hits_total", &memo_hits_);
  reg->RegisterCounter("pxq_index_memo_misses_total", &memo_misses_);
  reg->RegisterCounter("pxq_index_memo_value_hits_total", &memo_value_hits_);
  reg->RegisterCounter("pxq_index_memo_value_misses_total",
                       &memo_value_misses_);
  reg->RegisterCounter("pxq_index_value_neg_hits_total", &value_neg_hits_);
  reg->RegisterCounter("pxq_index_cross_check_mismatches_total",
                       &cross_check_mismatches_);
  reg->RegisterCounter("pxq_estimator_probes_total", &estimator_probes_);
  reg->RegisterCounter("pxq_plan_reorders_total", &plan_reorders_);
  reg->RegisterHistogram("pxq_index_apply_dirty_ns", &apply_dirty_ns_);
  reg->RegisterHistogram("pxq_est_error", &est_error_);
  // Everything Stats() derives (structure sizes, epochs, maintenance
  // totals) comes out of ONE Stats() walk per snapshot — one writer_mu_
  // acquisition, mutually consistent values within the group.
  reg->RegisterGroup([this](std::vector<std::pair<std::string, int64_t>>* o) {
    const IndexStats s = Stats();
    o->emplace_back("pxq_index_qname_keys", s.qname_keys);
    o->emplace_back("pxq_index_value_keys", s.value_keys);
    o->emplace_back("pxq_index_attr_value_keys", s.attr_value_keys);
    o->emplace_back("pxq_index_path_keys", s.path_keys);
    o->emplace_back("pxq_index_chain_keys", s.chain_keys);
    o->emplace_back("pxq_index_postings_entries", s.postings_entries);
    o->emplace_back("pxq_index_chain_postings", s.chain_postings);
    o->emplace_back("pxq_index_complex_entries", s.complex_entries);
    o->emplace_back("pxq_index_node_states", s.node_states);
    o->emplace_back("pxq_index_bytes", s.bytes);
    o->emplace_back("pxq_index_build_micros", s.build_micros);
    o->emplace_back("pxq_index_maintenance_ops", s.maintenance_ops);
    o->emplace_back("pxq_index_applied_commits", s.applied_commits);
    o->emplace_back("pxq_index_shards", s.shards);
    o->emplace_back("pxq_index_publish_epoch", s.publish_epoch);
    o->emplace_back("pxq_index_structure_epoch", s.structure_epoch);
    o->emplace_back("pxq_index_stat_keys", s.stat_keys);
    o->emplace_back("pxq_index_histogram_buckets", s.histogram_buckets);
  });
}

}  // namespace pxq::index
