#include "index/index_manager.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "xpath/value_compare.h"

namespace pxq::index {
namespace {

void SortedInsert(std::vector<NodeId>* v, NodeId n) {
  auto it = std::lower_bound(v->begin(), v->end(), n);
  if (it == v->end() || *it != n) v->insert(it, n);
}

void SortedErase(std::vector<NodeId>* v, NodeId n) {
  auto it = std::lower_bound(v->begin(), v->end(), n);
  if (it != v->end() && *it == n) v->erase(it);
}

void SidecarErase(std::multimap<double, NodeId>* m, double key, NodeId n) {
  auto [lo, hi] = m->equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == n) {
      m->erase(it);
      return;
    }
  }
}

int RoundShards(int requested) {
  int n = 1;
  while (n < requested && n < 256) n <<= 1;
  return n;
}

const std::vector<PreId> kEmptyPres;

/// Value-index view of one element: simple (no element children) plus
/// the concatenation of its text children — which for a simple element
/// IS its XPath string value, since comments and PIs contain no text
/// descendants.
struct Derived {
  bool simple = true;
  std::string value;
};

Derived DeriveValue(const storage::PagedStore& store, PreId pre) {
  Derived d;
  const PreId end = pre + store.SizeAt(pre);
  for (PreId c = store.SkipHoles(pre + 1); c <= end;
       c = store.SkipHoles(c + store.SizeAt(c) + 1)) {
    switch (store.KindAt(c)) {
      case NodeKind::kElement:
        d.simple = false;
        d.value.clear();
        return d;
      case NodeKind::kText:
        d.value += store.pools().Text(store.RefAt(c));
        break;
      default:
        break;
    }
  }
  return d;
}

QnameId ParentQnameOf(const storage::PagedStore& store, PreId pre) {
  PreId parent = store.ParentOf(pre);
  return parent == kNullPre ? -1 : store.RefAt(parent);
}

}  // namespace

IndexManager::IndexManager(IndexConfig config)
    : config_(config), nshards_(RoundShards(std::max(1, config.shards))) {
  config_.shards = nshards_;
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(nshards_));
  owned_snaps_.resize(static_cast<size_t>(nshards_));
  for (int i = 0; i < nshards_; ++i) {
    owned_snaps_[static_cast<size_t>(i)] = std::make_shared<ShardSnapshot>();
    shards_[i].snap.store(owned_snaps_[static_cast<size_t>(i)].get(),
                          std::memory_order_release);
  }
}

IndexManager::~IndexManager() {
  for (int i = 0; i < nshards_; ++i) {
    const MemoTable* t = shards_[i].memo.load(std::memory_order_acquire);
    while (t != nullptr) {
      const MemoTable* prev = t->prev;
      delete t;
      t = prev;
    }
  }
}

// ---------------------------------------------------------------------------
// Writer side: copy-on-write staging + publication
// ---------------------------------------------------------------------------

IndexManager::ShardBuilder& IndexManager::BuilderFor(
    std::vector<ShardBuilder>& bs, QnameId qn) {
  ShardBuilder& b = bs[static_cast<size_t>(ShardOf(qn))];
  if (!b.next) {
    // Copy the outer maps; every bucket stays shared until touched.
    b.next = std::make_shared<ShardSnapshot>(*Snap(ShardOf(qn)));
  }
  b.touched = true;
  return b;
}

IndexManager::Postings* IndexManager::MutablePostings(
    std::vector<ShardBuilder>& bs, QnameId qn) {
  ShardBuilder& b = BuilderFor(bs, qn);
  auto it = b.post.find(qn);
  if (it == b.post.end()) {
    auto cur = b.next->postings.find(qn);
    auto fresh = cur == b.next->postings.end()
                     ? std::make_shared<Postings>()
                     : std::make_shared<Postings>(*cur->second);
    fresh->gen = ++next_gen_;  // new bucket identity for memo validation
    it = b.post.emplace(qn, std::move(fresh)).first;
  }
  return it->second.get();
}

IndexManager::ValueBucket* IndexManager::MutableValues(
    std::vector<ShardBuilder>& bs, QnameId qn) {
  ShardBuilder& b = BuilderFor(bs, qn);
  auto it = b.val.find(qn);
  if (it == b.val.end()) {
    auto cur = b.next->values.find(qn);
    auto fresh = cur == b.next->values.end()
                     ? std::make_shared<ValueBucket>()
                     : std::make_shared<ValueBucket>(*cur->second);
    it = b.val.emplace(qn, std::move(fresh)).first;
  }
  return it->second.get();
}

IndexManager::AttrBucket* IndexManager::MutableAttrs(
    std::vector<ShardBuilder>& bs, QnameId qn) {
  ShardBuilder& b = BuilderFor(bs, qn);
  auto it = b.attr.find(qn);
  if (it == b.attr.end()) {
    auto cur = b.next->attrs.find(qn);
    auto fresh = cur == b.next->attrs.end()
                     ? std::make_shared<AttrBucket>()
                     : std::make_shared<AttrBucket>(*cur->second);
    it = b.attr.emplace(qn, std::move(fresh)).first;
  }
  return it->second.get();
}

IndexManager::Postings* IndexManager::MutablePaths(
    std::vector<ShardBuilder>& bs, QnameId self_qn, uint64_t key) {
  ShardBuilder& b = BuilderFor(bs, self_qn);  // path keys shard by self qname
  auto it = b.path.find(key);
  if (it == b.path.end()) {
    auto cur = b.next->paths.find(key);
    auto fresh = cur == b.next->paths.end()
                     ? std::make_shared<Postings>()
                     : std::make_shared<Postings>(*cur->second);
    fresh->gen = ++next_gen_;
    it = b.path.emplace(key, std::move(fresh)).first;
  }
  return it->second.get();
}

void IndexManager::AddNode(std::vector<ShardBuilder>& bs,
                           const storage::PagedStore& store, NodeId node,
                           PreId pre, QnameId parent_qn) {
  NodeState st;
  st.qn = store.RefAt(pre);
  st.parent_qn = parent_qn;
  SortedInsert(&MutablePostings(bs, st.qn)->nodes, node);
  SortedInsert(&MutablePaths(bs, st.qn, PathKeyOf(parent_qn, st.qn))->nodes,
               node);
  ValueBucket* vb = MutableValues(bs, st.qn);
  Derived d = DeriveValue(store, pre);
  if (d.simple) {
    st.simple = true;
    st.value = std::move(d.value);
    st.numeric = xpath::detail::ParseNumber(st.value, &st.num);
    ValueEntry& e = vb->by_string[st.value];
    e.numeric = st.numeric;
    SortedInsert(&e.nodes, node);
    if (st.numeric) vb->by_number.emplace(st.num, node);
  } else {
    SortedInsert(&vb->complex_elems, node);
  }
  std::vector<int32_t> rows;
  store.attrs().Lookup(node, &rows);
  for (int32_t r : rows) {
    const storage::AttrRow& row = store.attrs().row(r);
    AttrState as;
    as.qn = row.qname;
    as.value = store.pools().Prop(row.prop);
    as.numeric = xpath::detail::ParseNumber(as.value, &as.num);
    AttrBucket* ab = MutableAttrs(bs, as.qn);
    SortedInsert(&ab->owners, node);
    ValueEntry& e = ab->by_string[as.value];
    e.numeric = as.numeric;
    SortedInsert(&e.nodes, node);
    if (as.numeric) ab->by_number.emplace(as.num, node);
    st.attrs.push_back(std::move(as));
  }
  node_state_[node] = std::move(st);
}

void IndexManager::RemoveNode(std::vector<ShardBuilder>& bs, NodeId node) {
  auto it = node_state_.find(node);
  if (it == node_state_.end()) return;
  const NodeState& st = it->second;

  SortedErase(&MutablePostings(bs, st.qn)->nodes, node);
  SortedErase(&MutablePaths(bs, st.qn, PathKeyOf(st.parent_qn, st.qn))->nodes,
              node);
  ValueBucket* vb = MutableValues(bs, st.qn);
  if (st.simple) {
    auto eit = vb->by_string.find(st.value);
    if (eit != vb->by_string.end()) {
      SortedErase(&eit->second.nodes, node);
      if (eit->second.nodes.empty()) vb->by_string.erase(eit);
    }
    if (st.numeric) SidecarErase(&vb->by_number, st.num, node);
  } else {
    SortedErase(&vb->complex_elems, node);
  }
  for (const AttrState& as : st.attrs) {
    AttrBucket* ab = MutableAttrs(bs, as.qn);
    SortedErase(&ab->owners, node);
    auto eit = ab->by_string.find(as.value);
    if (eit != ab->by_string.end()) {
      SortedErase(&eit->second.nodes, node);
      if (eit->second.nodes.empty()) ab->by_string.erase(eit);
    }
    if (as.numeric) SidecarErase(&ab->by_number, as.num, node);
  }
  node_state_.erase(it);
}

void IndexManager::PruneMemos() {
  // Exclusive window: no reader holds a memo table pointer, so every
  // table except the newest can be reclaimed.
  for (int i = 0; i < nshards_; ++i) {
    const MemoTable* newest = shards_[i].memo.load(std::memory_order_acquire);
    if (newest == nullptr) continue;
    const MemoTable* t = newest->prev;
    while (t != nullptr) {
      const MemoTable* prev = t->prev;
      delete t;
      t = prev;
    }
    const_cast<MemoTable*>(newest)->prev = nullptr;
  }
}

void IndexManager::Publish(std::vector<ShardBuilder>& bs, bool structural) {
  for (int i = 0; i < nshards_; ++i) {
    ShardBuilder& b = bs[static_cast<size_t>(i)];
    if (!b.touched) continue;
    // Install privatized buckets; empty buckets drop their key so probe
    // misses stay O(1) map lookups and memory is reclaimed.
    for (auto& [qn, p] : b.post) {
      if (p->nodes.empty()) b.next->postings.erase(qn);
      else b.next->postings[qn] = std::move(p);
    }
    for (auto& [qn, v] : b.val) {
      if (v->empty()) b.next->values.erase(qn);
      else b.next->values[qn] = std::move(v);
    }
    for (auto& [qn, a] : b.attr) {
      if (a->empty()) b.next->attrs.erase(qn);
      else b.next->attrs[qn] = std::move(a);
    }
    for (auto& [key, p] : b.path) {
      if (p->nodes.empty()) b.next->paths.erase(key);
      else b.next->paths[key] = std::move(p);
    }
    shards_[i].snap.store(b.next.get(), std::memory_order_release);
    // Reclaim the previous snapshot: the exclusive window guarantees no
    // probe still reads it.
    owned_snaps_[static_cast<size_t>(i)] = std::move(b.next);
  }
  PruneMemos();
  if (structural) {
    // Pre ranks shifted: every memoized materialization is stale. Memo
    // entries self-invalidate via the epoch check; no table touch here.
    structure_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  publish_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void IndexManager::Rebuild(const storage::PagedStore& store) {
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(writer_mu_);
  node_state_.clear();
  std::vector<ShardBuilder> bs(static_cast<size_t>(nshards_));
  for (int i = 0; i < nshards_; ++i) {
    // Start every shard from scratch (not from the current snapshot).
    bs[static_cast<size_t>(i)].next = std::make_shared<ShardSnapshot>();
    bs[static_cast<size_t>(i)].touched = true;
  }
  if (config_.enabled) {
    // Pre-order walk tracking the enclosing element chain, so each
    // element's parent qname is O(1) instead of an ancestor descent.
    struct Enclosing {
      PreId end;
      QnameId qn;
    };
    std::vector<Enclosing> stack;
    const PreId end = store.view_size();
    for (PreId p = store.SkipHoles(0); p < end; p = store.SkipHoles(p + 1)) {
      while (!stack.empty() && p > stack.back().end) stack.pop_back();
      if (store.KindAt(p) != NodeKind::kElement) continue;
      const QnameId parent_qn = stack.empty() ? -1 : stack.back().qn;
      AddNode(bs, store, store.NodeAt(p), p, parent_qn);
      stack.push_back({p + store.SizeAt(p), store.RefAt(p)});
    }
  }
  Publish(bs, /*structural=*/true);
  maintenance_ops_ = 0;
  applied_commits_ = 0;
  build_micros_ = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
}

void IndexManager::ApplyDirty(const storage::PagedStore& store,
                              const DeltaIndex& delta) {
  if (!config_.enabled) return;
  // An empty dirty set means no structural/value/attr mutation happened
  // (every pre-shifting primitive marks at least one node), so nothing
  // to publish and the memoized pre-lists are still valid.
  if (delta.empty()) return;
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::vector<ShardBuilder> bs(static_cast<size_t>(nshards_));
  std::vector<NodeId> work = delta.dirty();
  std::unordered_set<NodeId> seen(work.begin(), work.end());
  for (size_t i = 0; i < work.size(); ++i) {
    const NodeId n = work[i];
    // Detect renames against the reverse map BEFORE removal: the
    // transaction marks only the renamed node, but the (parent, self)
    // path keys of its element children changed with it. Enumerating
    // those children from the MERGED base (not the transaction's
    // clone) keeps concurrent commits convergent — a child inserted by
    // a rival commit is re-keyed here even though the renamer's clone
    // never saw it.
    QnameId old_qn = -1;
    auto st = node_state_.find(n);
    const bool known = st != node_state_.end();
    if (known) old_qn = st->second.qn;
    RemoveNode(bs, n);
    if (store.PosOfNode(n) == kNullPos) continue;  // deleted (or aborted id)
    auto pre = store.PreOfNode(n);
    if (!pre.ok()) continue;
    if (store.KindAt(pre.value()) != NodeKind::kElement) continue;
    if (known && old_qn != store.RefAt(pre.value())) {
      const PreId end = pre.value() + store.SizeAt(pre.value());
      for (PreId c = store.SkipHoles(pre.value() + 1); c <= end;
           c = store.SkipHoles(c + store.SizeAt(c) + 1)) {
        if (store.KindAt(c) != NodeKind::kElement) continue;
        if (seen.insert(store.NodeAt(c)).second) {
          work.push_back(store.NodeAt(c));
        }
      }
    }
    AddNode(bs, store, n, pre.value(), ParentQnameOf(store, pre.value()));
  }
  Publish(bs, delta.structural());
  maintenance_ops_ += static_cast<int64_t>(work.size());
  applied_commits_ += 1;
}

// ---------------------------------------------------------------------------
// Reader side: lock-free probes over published snapshots
// ---------------------------------------------------------------------------

bool IndexManager::Gate(int64_t candidates, int64_t scan_cost) const {
  if (config_.cross_check) return true;  // always exercise the index
  return static_cast<double>(candidates) <=
         config_.gate_ratio * static_cast<double>(scan_cost);
}

std::vector<PreId> IndexManager::ToPres(const storage::PagedStore& store,
                                        const std::vector<NodeId>& nodes) const {
  std::vector<PreId> pres;
  pres.reserve(nodes.size());
  for (NodeId n : nodes) {
    auto pre = store.PreOfNode(n);
    if (pre.ok()) pres.push_back(pre.value());
  }
  std::sort(pres.begin(), pres.end());
  return pres;
}

const std::vector<PreId>* IndexManager::MemoizedPres(
    const Shard& shard, const storage::PagedStore& store, bool is_path,
    uint64_t key, const Postings& src) const {
  const uint64_t sepoch = structure_epoch_.load(std::memory_order_acquire);
  const MemoTable* memo = shard.memo.load(std::memory_order_acquire);
  if (memo != nullptr) {
    const auto& map = is_path ? memo->by_path : memo->by_qname;
    auto it = map.find(key);
    if (it != map.end() && it->second->src_gen == src.gen &&
        it->second->structure_epoch == sepoch) {
      memo_hits_.v.fetch_add(1, std::memory_order_relaxed);
      return &it->second->pres;
    }
  }
  memo_misses_.v.fetch_add(1, std::memory_order_relaxed);
  auto entry = std::make_shared<MemoEntry>();
  entry->src_gen = src.gen;
  entry->structure_epoch = sepoch;
  entry->pres = ToPres(store, src.nodes);
  // CAS-publish a new table version. Readers race only with readers
  // (writers prune inside the exclusive window); a loser deletes its
  // never-published candidate and retries against the latest table, so
  // concurrently inserted entries for other keys are never lost.
  // Entries are shared between versions, so each link in the retained
  // chain costs map nodes only, never pre-list copies.
  const MemoTable* cur = memo;
  for (;;) {
    auto* next = cur ? new MemoTable(*cur) : new MemoTable();
    next->prev = cur;
    (is_path ? next->by_path : next->by_qname)[key] = entry;
    if (shard.memo.compare_exchange_strong(cur, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      return &entry->pres;
    }
    delete next;
  }
}

int64_t IndexManager::PostingsCount(QnameId qn) const {
  if (!config_.enabled || qn < 0) return 0;
  const ShardSnapshot* snap = Snap(ShardOf(qn));
  auto it = snap->postings.find(qn);
  return it == snap->postings.end()
             ? 0
             : static_cast<int64_t>(it->second->nodes.size());
}

const std::vector<PreId>* IndexManager::ElementsByQname(
    const storage::PagedStore& store, QnameId qn, int64_t scan_cost) const {
  if (!config_.enabled || qn < 0) return nullptr;
  probes_.v.fetch_add(1, std::memory_order_relaxed);
  const Shard& shard = shards_[ShardOf(qn)];
  const ShardSnapshot* snap = shard.snap.load(std::memory_order_acquire);
  auto it = snap->postings.find(qn);
  const int64_t k = it == snap->postings.end()
                        ? 0
                        : static_cast<int64_t>(it->second->nodes.size());
  if (!Gate(k, scan_cost)) {
    probe_declines_.v.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it == snap->postings.end()) return &kEmptyPres;
  return MemoizedPres(shard, store, /*is_path=*/false,
                      static_cast<uint64_t>(static_cast<uint32_t>(qn)),
                      *it->second);
}

const std::vector<PreId>* IndexManager::PathPairProbe(
    const storage::PagedStore& store, QnameId parent_qn, QnameId self_qn,
    int64_t scan_cost) const {
  if (!config_.enabled || self_qn < 0) return nullptr;
  path_probes_.v.fetch_add(1, std::memory_order_relaxed);
  const Shard& shard = shards_[ShardOf(self_qn)];
  const ShardSnapshot* snap = shard.snap.load(std::memory_order_acquire);
  const uint64_t key = PathKeyOf(parent_qn, self_qn);
  auto it = snap->paths.find(key);
  const int64_t k = it == snap->paths.end()
                        ? 0
                        : static_cast<int64_t>(it->second->nodes.size());
  if (!Gate(k, scan_cost)) {
    path_declines_.v.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it == snap->paths.end()) return &kEmptyPres;
  return MemoizedPres(shard, store, /*is_path=*/true, key, *it->second);
}

void IndexManager::CollectMatches(
    const std::map<std::string, ValueEntry>& dict,
    const std::multimap<double, NodeId>& sidecar, xpath::CmpOp op,
    const std::string& literal, std::vector<NodeId>* out) {
  using xpath::CmpOp;
  double x = 0;
  const bool lit_num = xpath::detail::ParseNumber(literal, &x);

  if (op == CmpOp::kEq) {
    if (lit_num) {
      // Numeric equality ("1.0" matches literal "1"): sidecar only. A
      // non-numeric value can never be byte-equal to a string that
      // parses as a number.
      auto [lo, hi] = sidecar.equal_range(x);
      for (auto it = lo; it != hi; ++it) out->push_back(it->second);
    } else {
      auto it = dict.find(literal);
      if (it != dict.end()) {
        out->insert(out->end(), it->second.nodes.begin(),
                    it->second.nodes.end());
      }
    }
    return;
  }

  // Ordered operator. Numeric literal: numeric values compare through
  // the sidecar, non-numeric values lexicographically. Non-numeric
  // literal: everything compares lexicographically.
  const bool skip_numeric_in_dict = lit_num;
  if (lit_num) {
    std::multimap<double, NodeId>::const_iterator lo, hi;
    switch (op) {
      case CmpOp::kLt:
        lo = sidecar.begin();
        hi = sidecar.lower_bound(x);
        break;
      case CmpOp::kLe:
        lo = sidecar.begin();
        hi = sidecar.upper_bound(x);
        break;
      case CmpOp::kGt:
        lo = sidecar.upper_bound(x);
        hi = sidecar.end();
        break;
      default:  // kGe
        lo = sidecar.lower_bound(x);
        hi = sidecar.end();
        break;
    }
    for (auto it = lo; it != hi; ++it) out->push_back(it->second);
  }
  std::map<std::string, ValueEntry>::const_iterator lo, hi;
  switch (op) {
    case CmpOp::kLt:
      lo = dict.begin();
      hi = dict.lower_bound(literal);
      break;
    case CmpOp::kLe:
      lo = dict.begin();
      hi = dict.upper_bound(literal);
      break;
    case CmpOp::kGt:
      lo = dict.upper_bound(literal);
      hi = dict.end();
      break;
    default:  // kGe
      lo = dict.lower_bound(literal);
      hi = dict.end();
      break;
  }
  for (auto it = lo; it != hi; ++it) {
    if (skip_numeric_in_dict && it->second.numeric) continue;
    out->insert(out->end(), it->second.nodes.begin(),
                it->second.nodes.end());
  }
}

bool IndexManager::ChildValueProbe(const storage::PagedStore& store,
                                   QnameId qn, xpath::CmpOp op,
                                   const std::string& literal,
                                   int64_t scan_cost,
                                   std::vector<PreId>* simple,
                                   std::vector<PreId>* complex_rest) const {
  if (!config_.enabled || qn < 0 || op == xpath::CmpOp::kNe) return false;
  probes_.v.fetch_add(1, std::memory_order_relaxed);
  simple->clear();
  complex_rest->clear();
  const ShardSnapshot* snap = Snap(ShardOf(qn));
  auto vit = snap->values.find(qn);
  if (vit == snap->values.end()) {
    // No element carries this tag: the empty result is exact.
    return true;
  }
  const ValueBucket& vb = *vit->second;
  std::vector<NodeId> matches;
  CollectMatches(vb.by_string, vb.by_number, op, literal, &matches);
  const int64_t k = static_cast<int64_t>(matches.size()) +
                    static_cast<int64_t>(vb.complex_elems.size());
  if (!Gate(k, scan_cost)) {
    probe_declines_.v.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *simple = ToPres(store, matches);
  *complex_rest = ToPres(store, vb.complex_elems);
  return true;
}

std::optional<std::vector<PreId>> IndexManager::AttrOwners(
    const storage::PagedStore& store, QnameId qn, int64_t scan_cost) const {
  if (!config_.enabled || qn < 0) return std::nullopt;
  probes_.v.fetch_add(1, std::memory_order_relaxed);
  const ShardSnapshot* snap = Snap(ShardOf(qn));
  auto it = snap->attrs.find(qn);
  const int64_t k = it == snap->attrs.end()
                        ? 0
                        : static_cast<int64_t>(it->second->owners.size());
  if (!Gate(k, scan_cost)) {
    probe_declines_.v.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it == snap->attrs.end()) return std::vector<PreId>{};
  return ToPres(store, it->second->owners);
}

std::optional<std::vector<PreId>> IndexManager::AttrValueProbe(
    const storage::PagedStore& store, QnameId qn, xpath::CmpOp op,
    const std::string& literal, int64_t scan_cost) const {
  if (!config_.enabled || qn < 0 || op == xpath::CmpOp::kNe) {
    return std::nullopt;
  }
  probes_.v.fetch_add(1, std::memory_order_relaxed);
  const ShardSnapshot* snap = Snap(ShardOf(qn));
  auto it = snap->attrs.find(qn);
  if (it == snap->attrs.end()) return std::vector<PreId>{};
  std::vector<NodeId> matches;
  CollectMatches(it->second->by_string, it->second->by_number, op, literal,
                 &matches);
  if (!Gate(static_cast<int64_t>(matches.size()), scan_cost)) {
    probe_declines_.v.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return ToPres(store, matches);
}

void IndexManager::NoteCrossCheckMismatch() const {
  cross_check_mismatches_.v.fetch_add(1, std::memory_order_relaxed);
}

IndexStats IndexManager::Stats() const {
  IndexStats s;
  s.probes = probes_.v.load(std::memory_order_relaxed);
  s.probe_hits = s.probes - probe_declines_.v.load(std::memory_order_relaxed);
  s.path_probes = path_probes_.v.load(std::memory_order_relaxed);
  s.path_hits =
      s.path_probes - path_declines_.v.load(std::memory_order_relaxed);
  s.child_step_hits = child_step_hits_.v.load(std::memory_order_relaxed);
  s.memo_hits = memo_hits_.v.load(std::memory_order_relaxed);
  s.memo_misses = memo_misses_.v.load(std::memory_order_relaxed);
  s.cross_check_mismatches =
      cross_check_mismatches_.v.load(std::memory_order_relaxed);
  s.shards = nshards_;
  s.publish_epoch =
      static_cast<int64_t>(publish_epoch_.load(std::memory_order_acquire));
  s.structure_epoch =
      static_cast<int64_t>(structure_epoch_.load(std::memory_order_acquire));
  // Structure walk under writer_mu_: publication both swaps and
  // reclaims snapshots, so Stats() must not chase the raw pointers
  // concurrently with a writer.
  std::lock_guard<std::mutex> lock(writer_mu_);
  s.build_micros = build_micros_;
  s.maintenance_ops = maintenance_ops_;
  s.applied_commits = applied_commits_;
  s.node_states = static_cast<int64_t>(node_state_.size());
  int64_t bytes = 0;
  for (const auto& [n, st] : node_state_) {
    bytes += static_cast<int64_t>(sizeof(NodeState)) +
             static_cast<int64_t>(st.value.size()) +
             static_cast<int64_t>(st.attrs.size()) * 48;
  }
  for (const auto& owned : owned_snaps_) {
    const ShardSnapshot& snap = *owned;
    s.qname_keys += static_cast<int64_t>(snap.postings.size());
    s.path_keys += static_cast<int64_t>(snap.paths.size());
    for (const auto& [qn, p] : snap.postings) {
      s.postings_entries += static_cast<int64_t>(p->nodes.size());
      bytes += static_cast<int64_t>(p->nodes.size()) * 8;
    }
    for (const auto& [key, p] : snap.paths) {
      bytes += static_cast<int64_t>(p->nodes.size()) * 8 + 16;
    }
    for (const auto& [qn, vbp] : snap.values) {
      const ValueBucket& vb = *vbp;
      s.value_keys += static_cast<int64_t>(vb.by_string.size());
      s.complex_entries += static_cast<int64_t>(vb.complex_elems.size());
      for (const auto& [v, e] : vb.by_string) {
        bytes += static_cast<int64_t>(v.size()) + 48 +
                 static_cast<int64_t>(e.nodes.size()) * 8;
      }
      bytes += static_cast<int64_t>(vb.by_number.size()) * 48 +
               static_cast<int64_t>(vb.complex_elems.size()) * 8;
    }
    for (const auto& [qn, abp] : snap.attrs) {
      const AttrBucket& ab = *abp;
      s.attr_value_keys += static_cast<int64_t>(ab.by_string.size());
      for (const auto& [v, e] : ab.by_string) {
        bytes += static_cast<int64_t>(v.size()) + 48 +
                 static_cast<int64_t>(e.nodes.size()) * 8;
      }
      bytes += static_cast<int64_t>(ab.by_number.size()) * 48 +
               static_cast<int64_t>(ab.owners.size()) * 8;
    }
  }
  s.bytes = bytes;
  return s;
}

}  // namespace pxq::index
