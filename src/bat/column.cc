#include "bat/column.h"

// Header-only templates; this TU exists so the target has a stable object
// for the module and a place for future non-template helpers.
namespace pxq::bat {}
