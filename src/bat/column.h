// Mini column-store kernel ("BAT" layer) modelling the two MonetDB
// properties the paper relies on:
//   * void columns: densely ascending keys that are never materialized,
//     giving O(1) positional lookup (array indexing);
//   * typed tail columns supporting positional select / positional join.
// MonetDB BATs are binary [head|tail] tables whose head is void in all
// tables of the XML schema (Fig. 5/6); we therefore model a table as a
// set of TypedColumns sharing one implicit VoidColumn key.
#ifndef PXQ_BAT_COLUMN_H_
#define PXQ_BAT_COLUMN_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pxq::bat {

/// A virtual dense key column (MonetDB `void`): values are
/// seqbase, seqbase+1, ... It stores nothing; lookups are arithmetic.
/// The paper's central trick is that the view's `pre` column is void, so
/// pre numbers "shift" after an insert at zero physical cost.
class VoidColumn {
 public:
  explicit VoidColumn(int64_t seqbase = 0, int64_t count = 0)
      : seqbase_(seqbase), count_(count) {}

  int64_t seqbase() const { return seqbase_; }
  int64_t count() const { return count_; }
  void set_count(int64_t count) { count_ = count; }

  /// Value at position i (the whole point: no memory access).
  int64_t operator[](int64_t i) const {
    assert(i >= 0 && i < count_);
    return seqbase_ + i;
  }

  /// Positional lookup: position of value v, or -1 if out of range.
  int64_t PositionOf(int64_t v) const {
    int64_t i = v - seqbase_;
    return (i >= 0 && i < count_) ? i : -1;
  }

 private:
  int64_t seqbase_;
  int64_t count_;
};

/// A typed, appendable tail column addressed positionally by the table's
/// void key. Fixed-width values only; strings live in value pools that
/// this column references by ValueId (mirroring MonetDB's string heaps).
template <typename T>
class TypedColumn {
 public:
  TypedColumn() = default;
  explicit TypedColumn(int64_t count, T fill = T{}) : data_(count, fill) {}

  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  T Get(int64_t pos) const {
    assert(pos >= 0 && pos < size());
    return data_[static_cast<size_t>(pos)];
  }
  void Set(int64_t pos, T v) {
    assert(pos >= 0 && pos < size());
    data_[static_cast<size_t>(pos)] = v;
  }
  void Append(T v) { data_.push_back(v); }
  void Resize(int64_t count, T fill = T{}) {
    data_.resize(static_cast<size_t>(count), fill);
  }

  const T* data() const { return data_.data(); }
  T* mutable_data() { return data_.data(); }

  /// Bytes of payload held (for the E7 footprint experiment).
  int64_t ByteSize() const { return size() * static_cast<int64_t>(sizeof(T)); }

 private:
  std::vector<T> data_;
};

/// Positional select: gather `column[key]` for each key in `keys`.
/// This is MonetDB's positional join of a void-headed BAT with a list of
/// void key values — an array gather, one load per key.
template <typename T>
std::vector<T> PositionalJoin(const TypedColumn<T>& column,
                              const std::vector<int64_t>& keys) {
  std::vector<T> out;
  out.reserve(keys.size());
  for (int64_t k : keys) out.push_back(column.Get(k));
  return out;
}

/// Positional range select: keys in [lo, hi) whose column value satisfies
/// `pred`. Returns the qualifying keys (positions).
template <typename T, typename Pred>
std::vector<int64_t> PositionalSelect(const TypedColumn<T>& column,
                                      int64_t lo, int64_t hi, Pred pred) {
  std::vector<int64_t> out;
  if (lo < 0) lo = 0;
  if (hi > column.size()) hi = column.size();
  for (int64_t i = lo; i < hi; ++i) {
    if (pred(column.Get(i))) out.push_back(i);
  }
  return out;
}

}  // namespace pxq::bat

#endif  // PXQ_BAT_COLUMN_H_
