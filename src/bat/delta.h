// Differential lists and copy-on-write overlays — the MonetDB isolation
// substrate the paper's transaction protocol (Fig. 8) builds on.
//
// A transaction never writes base tables directly. Point writes go into a
// DeltaList (position -> new value) layered over the base column by an
// OverlayColumn; bulk-updated page regions go into private page images
// (PagedOverlay), mirroring MonetDB's copy-on-write memory maps where the
// OS swaps in private pages for everything a transaction touches. At
// commit, deltas are propagated into the base under the global write lock.
#ifndef PXQ_BAT_DELTA_H_
#define PXQ_BAT_DELTA_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bat/column.h"

namespace pxq::bat {

/// Differential list for one column: sparse set of positional overwrites
/// plus an appended tail beyond the base column's size.
template <typename T>
class DeltaList {
 public:
  void Put(int64_t pos, T v) { writes_[pos] = v; }

  /// True (and fills *out) if this delta overrides position `pos`.
  bool Get(int64_t pos, T* out) const {
    auto it = writes_.find(pos);
    if (it == writes_.end()) return false;
    *out = it->second;
    return true;
  }

  bool empty() const { return writes_.empty(); }
  size_t size() const { return writes_.size(); }

  /// Apply all writes to the base column (commit propagation). Positions
  /// beyond the base size extend it.
  void ApplyTo(TypedColumn<T>* base) const {
    for (const auto& [pos, v] : writes_) {
      if (pos >= base->size()) base->Resize(pos + 1);
      base->Set(pos, v);
    }
  }

  /// Iteration for WAL serialization.
  const std::unordered_map<int64_t, T>& writes() const { return writes_; }

 private:
  std::unordered_map<int64_t, T> writes_;
};

/// Read-through view: delta first, then base. This is what a transaction
/// uses for all its reads so it sees its own writes ("read your writes")
/// without other transactions seeing them.
template <typename T>
class OverlayColumn {
 public:
  OverlayColumn(const TypedColumn<T>* base, const DeltaList<T>* delta)
      : base_(base), delta_(delta) {}

  T Get(int64_t pos) const {
    T v;
    if (delta_->Get(pos, &v)) return v;
    return base_->Get(pos);
  }

  int64_t size() const { return base_->size(); }

 private:
  const TypedColumn<T>* base_;
  const DeltaList<T>* delta_;
};

/// Page-granular copy-on-write overlay used for the bulk-updated areas of
/// the pos/size/level and node/pos tables (Fig. 7 / Fig. 8). A page is
/// either shared with the base or privately copied on first write. New
/// pages appended by the transaction are private by construction — the
/// paper's "only write into newly appended pages" rule.
template <typename T>
class PagedOverlay {
 public:
  PagedOverlay(const TypedColumn<T>* base, int64_t page_tuples)
      : base_(base), page_tuples_(page_tuples) {}

  int64_t page_tuples() const { return page_tuples_; }

  T Get(int64_t pos) const {
    int64_t pg = pos / page_tuples_;
    auto it = private_pages_.find(pg);
    if (it != private_pages_.end()) {
      return it->second[static_cast<size_t>(pos % page_tuples_)];
    }
    return base_->Get(pos);
  }

  /// Write through COW: copies the page from base on first touch.
  void Set(int64_t pos, T v) {
    int64_t pg = pos / page_tuples_;
    auto& page = EnsurePrivate(pg);
    page[static_cast<size_t>(pos % page_tuples_)] = v;
  }

  /// Number of pages this overlay privatized (test/bench observability).
  size_t private_page_count() const { return private_pages_.size(); }

  bool IsPrivate(int64_t pg) const { return private_pages_.count(pg) > 0; }

  /// Propagate all private pages into the base column.
  void ApplyTo(TypedColumn<T>* base) const {
    for (const auto& [pg, page] : private_pages_) {
      int64_t start = pg * page_tuples_;
      if (start + page_tuples_ > base->size()) {
        base->Resize(start + page_tuples_);
      }
      for (int64_t i = 0; i < page_tuples_; ++i) {
        base->Set(start + i, page[static_cast<size_t>(i)]);
      }
    }
  }

  const std::unordered_map<int64_t, std::vector<T>>& private_pages() const {
    return private_pages_;
  }

 private:
  std::vector<T>& EnsurePrivate(int64_t pg) {
    auto it = private_pages_.find(pg);
    if (it != private_pages_.end()) return it->second;
    std::vector<T> page(static_cast<size_t>(page_tuples_), T{});
    int64_t start = pg * page_tuples_;
    for (int64_t i = 0; i < page_tuples_; ++i) {
      int64_t p = start + i;
      if (p < base_->size()) page[static_cast<size_t>(i)] = base_->Get(p);
    }
    return private_pages_.emplace(pg, std::move(page)).first->second;
  }

  const TypedColumn<T>* base_;
  int64_t page_tuples_;
  std::unordered_map<int64_t, std::vector<T>> private_pages_;
};

}  // namespace pxq::bat

#endif  // PXQ_BAT_DELTA_H_
