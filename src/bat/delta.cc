#include "bat/delta.h"

namespace pxq::bat {}
