// Status / StatusOr error handling for pxq (RocksDB/Arrow style: no
// exceptions on library paths; every fallible operation returns a Status
// or StatusOr<T> that the caller must consume).
#ifndef PXQ_COMMON_STATUS_H_
#define PXQ_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace pxq {

/// Error taxonomy for the library. Kept deliberately small; the message
/// string carries the detail.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // lookup missed (node id, qname, path target)
  kCorruption,        // on-disk / in-memory structure violated an invariant
  kParseError,        // XML / XPath / XUpdate text could not be parsed
  kConflict,          // lock conflict / write-write conflict
  kAborted,           // transaction aborted (deadlock timeout, validation)
  kUnsupported,       // feature outside the implemented subset
  kIOError,           // WAL / snapshot file system failure
};

/// Result of a fallible operation. Cheap to move; ok() is the hot path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }

  /// Human-readable "code: message" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// Either a value or an error Status. Value access asserts ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}          // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagate a non-OK Status to the caller.
#define PXQ_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::pxq::Status _s = (expr);               \
    if (!_s.ok()) return _s;                 \
  } while (0)

// Evaluate a StatusOr expression; on error return its Status, else bind
// the value to `lhs`. `lhs` may be a declaration ("auto x") or lvalue.
#define PXQ_ASSIGN_OR_RETURN(lhs, expr)                  \
  PXQ_ASSIGN_OR_RETURN_IMPL_(                            \
      PXQ_STATUS_CONCAT_(_statusor_, __LINE__), lhs, expr)

// NOLINTBEGIN(bugprone-macro-parentheses): `lhs` is deliberately
// unparenthesized — it may be a declaration ("auto x"), which
// parentheses would break.
#define PXQ_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()
// NOLINTEND(bugprone-macro-parentheses)

#define PXQ_STATUS_CONCAT_(a, b) PXQ_STATUS_CONCAT_IMPL_(a, b)
#define PXQ_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace pxq

#endif  // PXQ_COMMON_STATUS_H_
