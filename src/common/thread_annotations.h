// Clang thread-safety-analysis capability annotations (a no-op on GCC
// and every other compiler). The build promotes -Wthread-safety
// -Wthread-safety-beta to errors on Clang, so these annotations are the
// machine-checked form of the repo's locking discipline:
//
//   * every mutex-guarded field carries PXQ_GUARDED_BY(mu) — the
//     compiler rejects any access outside a critical section;
//   * writer-side helpers that assume a lock is already held carry
//     PXQ_REQUIRES(mu) — callers must prove they hold it;
//   * the GlobalLock is itself a capability (shared for readers,
//     exclusive for the commit window), so an unbalanced
//     LockExclusive/UnlockExclusive path is a compile error;
//   * the deliberate exceptions — the pools' lock-free readers riding
//     release/acquire chunk publication — are marked
//     PXQ_NO_THREAD_SAFETY_ANALYSIS with a rationale comment, so every
//     exemption is explicit and greppable.
//
// Use the pxq::Mutex / pxq::MutexLock wrappers (common/mutex.h) rather
// than std:: primitives; ci/lint_concurrency.py enforces that.
//
// Macro set and semantics follow the Clang documentation's canonical
// mutex.h (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
#ifndef PXQ_COMMON_THREAD_ANNOTATIONS_H_
#define PXQ_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define PXQ_TSA_ATTR(x) __attribute__((x))
#else
#define PXQ_TSA_ATTR(x)  // no-op outside Clang
#endif

/// A type that acts as a lock/capability ("mutex", "shared_mutex", ...).
#define PXQ_CAPABILITY(x) PXQ_TSA_ATTR(capability(x))

/// RAII type that acquires a capability in its constructor and releases
/// it in its destructor (MutexLock, ReadGuard).
#define PXQ_SCOPED_CAPABILITY PXQ_TSA_ATTR(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define PXQ_GUARDED_BY(x) PXQ_TSA_ATTR(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding `x`.
#define PXQ_PT_GUARDED_BY(x) PXQ_TSA_ATTR(pt_guarded_by(x))

/// Lock-ordering declarations (checked under -Wthread-safety-beta):
/// this capability must be acquired before/after the listed ones.
#define PXQ_ACQUIRED_BEFORE(...) PXQ_TSA_ATTR(acquired_before(__VA_ARGS__))
#define PXQ_ACQUIRED_AFTER(...) PXQ_TSA_ATTR(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusively / shared) on entry
/// and does not release it.
#define PXQ_REQUIRES(...) PXQ_TSA_ATTR(requires_capability(__VA_ARGS__))
#define PXQ_REQUIRES_SHARED(...) \
  PXQ_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared).
#define PXQ_ACQUIRE(...) PXQ_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define PXQ_ACQUIRE_SHARED(...) \
  PXQ_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / either).
#define PXQ_RELEASE(...) PXQ_TSA_ATTR(release_capability(__VA_ARGS__))
#define PXQ_RELEASE_SHARED(...) \
  PXQ_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define PXQ_RELEASE_GENERIC(...) \
  PXQ_TSA_ATTR(release_generic_capability(__VA_ARGS__))

/// Function attempts the capability; first argument is the return value
/// that signals success.
#define PXQ_TRY_ACQUIRE(...) PXQ_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define PXQ_TRY_ACQUIRE_SHARED(...) \
  PXQ_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock
/// prevention for self-locking public entry points).
#define PXQ_EXCLUDES(...) PXQ_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by analysis).
#define PXQ_ASSERT_CAPABILITY(x) PXQ_TSA_ATTR(assert_capability(x))
#define PXQ_ASSERT_SHARED_CAPABILITY(x) \
  PXQ_TSA_ATTR(assert_shared_capability(x))

/// Function returns a reference to the capability named `x`.
#define PXQ_RETURN_CAPABILITY(x) PXQ_TSA_ATTR(lock_returned(x))

/// Opt a function out of the analysis entirely. Every use must carry a
/// comment explaining the out-of-band synchronization (e.g. the string
/// pools' release/acquire chunk publication).
#define PXQ_NO_THREAD_SAFETY_ANALYSIS PXQ_TSA_ATTR(no_thread_safety_analysis)

#endif  // PXQ_COMMON_THREAD_ANNOTATIONS_H_
