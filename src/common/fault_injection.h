// Deterministic I/O fault injection for crash-safety tests.
//
// Every mutating file-system operation in the durability path (open /
// write / fsync / close / rename / directory-fsync / truncate — see
// common/io_file.h) asks the process-wide injector whether it should
// fail before touching the OS. In production nothing is armed and the
// check is a single relaxed atomic load; tests arm the injector to
// make exactly the Nth faultable operation fail, simulating a crash at
// that protocol step (ENOSPC, power loss between write and rename,
// a dirty WAL truncate, ...).
//
// Two modes beyond "off":
//
//   counting  StartCounting() records the name of every faultable op
//             without failing any; StopCounting() returns the ordered
//             names. Tests use one counting pass to learn a protocol's
//             op sequence, then replay it failing each step in turn —
//             the crash matrix needs no hard-coded op indices.
//
//   armed     ArmFailAt(n) makes the nth subsequent faultable op
//             (1-based) return an injected error. A non-negative
//             torn_fraction makes a failing *write* first persist that
//             fraction of its payload — a torn write, the on-disk state
//             a real crash leaves mid-write. The injector auto-disarms
//             after firing once: a crash happens at one instant, and
//             the code's own cleanup/rollback I/O after the failure is
//             the behavior under test, not a second victim.
//
// Environment knobs (read once, at first use — for CI legs that crash
// a whole binary rather than a single call): PXQ_IO_FAIL_AT=<n> arms
// fail-at-op-n at startup, and PXQ_IO_FAIL_AT=<op>:<n> (e.g.
// "rename:2") counts only ops of that kind (open, write, sync, close,
// rename, dirsync, truncate); PXQ_IO_TORN_FRACTION=<f in [0,1]> makes
// that injected failure a torn write.
#ifndef PXQ_COMMON_FAULT_INJECTION_H_
#define PXQ_COMMON_FAULT_INJECTION_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pxq {

class FaultInjector {
 public:
  /// Called by io_file.h primitives before each faultable operation.
  /// Returns true when the op must fail. For a torn write,
  /// `*torn_bytes` receives how many payload bytes to persist before
  /// failing (otherwise left untouched); `write_size` is the payload
  /// size of a write op, 0 for non-writes.
  static bool ShouldFail(const char* op, size_t write_size,
                         size_t* torn_bytes);

  /// Arm: the nth (1-based) subsequent faultable op fails. If
  /// `torn_fraction` is in [0, 1] and that op is a write, it persists
  /// floor(size * fraction) bytes first. Resets the fired flag.
  static void ArmFailAt(int64_t nth, double torn_fraction = -1.0);

  /// Disarm everything (also stops counting). Idempotent.
  static void Disarm();

  /// True iff an armed fault has fired since the last ArmFailAt.
  static bool Fired();

  /// Record op names instead of failing; returns the ordered names.
  static void StartCounting();
  static std::vector<std::string> StopCounting();
};

}  // namespace pxq

#endif  // PXQ_COMMON_FAULT_INJECTION_H_
