#include "common/status.h"

namespace pxq {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kConflict: return "Conflict";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kIOError: return "IOError";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace pxq
