#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace pxq {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string_view> StrSplit(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseUint(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return false;
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

std::string XmlEscape(std::string_view s, bool attribute) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"':
        if (attribute) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      case '\'':
        if (attribute) {
          out += "&apos;";
        } else {
          out += c;
        }
        break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace pxq
