// Deterministic PRNG used by the XMark generator, property tests and
// workload drivers. xoshiro256** — fast, seedable, stable across
// platforms (unlike std::default_random_engine distributions).
#ifndef PXQ_COMMON_RANDOM_H_
#define PXQ_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pxq {

/// Seeded pseudo-random generator with convenience samplers. All pxq
/// randomness flows through this class so runs are reproducible from a
/// single seed.
class Random {
 public:
  explicit Random(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Zipf-ish skewed pick in [0, n): rank r with weight 1/(r+1).
  /// Used for attribute-value and text-vocabulary skew in the generator.
  uint64_t Skewed(uint64_t n);

  /// Pick an element of a non-empty vector uniformly.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t s_[4];
};

}  // namespace pxq

#endif  // PXQ_COMMON_RANDOM_H_
