// Small string helpers shared across modules (no dependency on absl).
#ifndef PXQ_COMMON_STRINGS_H_
#define PXQ_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pxq {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string_view> StrSplit(std::string_view s, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parse a non-negative decimal integer; returns false on any non-digit
/// or overflow. Used by XPath positional predicates and XUpdate child=.
bool ParseUint(std::string_view s, uint64_t* out);

/// XML-escape text content (& < >) or attribute values (also " ').
std::string XmlEscape(std::string_view s, bool attribute);

}  // namespace pxq

#endif  // PXQ_COMMON_STRINGS_H_
