#include "common/fault_injection.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pxq {
namespace {

// Fast-path gate: false whenever the injector is fully off, so
// production I/O pays one load and no lock.
// relaxed: the flag is a pure hint — the slow path re-checks the real
// state under state_mu_; a stale read only costs one mutex round-trip.
std::atomic<bool> active{false};

Mutex state_mu_;

struct State {
  bool counting = false;
  bool armed = false;
  bool fired = false;
  int64_t countdown = 0;  // ops remaining before the armed one fires
  double torn_fraction = -1.0;
  std::string op_filter;  // env "<op>:<n>" form: count only this op
  std::vector<std::string> ops;
};
State* MutableState() PXQ_REQUIRES(state_mu_) {
  static State* s = new State();
  return s;
}

void RefreshActive() PXQ_REQUIRES(state_mu_) {
  // relaxed: see the declaration — gate only, state_mu_ is the truth.
  active.store(MutableState()->counting || MutableState()->armed,
               std::memory_order_relaxed);
}

// One-time env arming (CI legs crash whole binaries: PXQ_IO_FAIL_AT=n,
// optionally PXQ_IO_TORN_FRACTION=f). Called under state_mu_.
void InitFromEnvOnce() PXQ_REQUIRES(state_mu_) {
  static bool done = false;
  if (done) return;
  done = true;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before threads start
  const char* at = std::getenv("PXQ_IO_FAIL_AT");
  if (at == nullptr || at[0] == '\0') return;
  State* s = MutableState();
  s->armed = true;
  s->fired = false;
  // Two forms: "<n>" fails the nth I/O op of any kind; "<op>:<n>"
  // (e.g. "rename:2") counts only that op.
  std::string spec(at);
  if (auto colon = spec.find(':'); colon != std::string::npos) {
    s->op_filter = spec.substr(0, colon);
    s->countdown = std::atoll(spec.c_str() + colon + 1);
  } else {
    s->countdown = std::atoll(at);
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before threads start
  if (const char* tf = std::getenv("PXQ_IO_TORN_FRACTION");
      tf != nullptr && tf[0] != '\0') {
    s->torn_fraction = std::atof(tf);
  }
  RefreshActive();
}

// One-time latch so the production fast path never takes state_mu_.
std::atomic<bool> env_checked{false};

}  // namespace

bool FaultInjector::ShouldFail(const char* op, size_t write_size,
                               size_t* torn_bytes) {
  if (!env_checked.load(std::memory_order_acquire)) {
    MutexLock lock(&state_mu_);
    InitFromEnvOnce();
    env_checked.store(true, std::memory_order_release);
  }
  // relaxed: gate only; armed/counting transitions are rare and tests
  // arm the injector before issuing the I/O under test.
  if (!active.load(std::memory_order_relaxed)) return false;
  MutexLock lock(&state_mu_);
  State* s = MutableState();
  if (s->counting) {
    s->ops.emplace_back(op);
    return false;
  }
  if (!s->armed) return false;
  if (!s->op_filter.empty() && s->op_filter != op) return false;
  if (--s->countdown > 0) return false;
  // The armed op: fire once, then disarm so the caller's own
  // rollback/cleanup I/O runs against a working filesystem.
  s->armed = false;
  s->fired = true;
  if (torn_bytes != nullptr && write_size > 0 && s->torn_fraction >= 0.0) {
    *torn_bytes = static_cast<size_t>(
        std::floor(static_cast<double>(write_size) * s->torn_fraction));
  }
  RefreshActive();
  return true;
}

void FaultInjector::ArmFailAt(int64_t nth, double torn_fraction) {
  MutexLock lock(&state_mu_);
  State* s = MutableState();
  s->armed = nth > 0;
  s->fired = false;
  s->countdown = nth;
  s->torn_fraction = torn_fraction;
  s->op_filter.clear();
  RefreshActive();
}

void FaultInjector::Disarm() {
  MutexLock lock(&state_mu_);
  State* s = MutableState();
  s->armed = false;
  s->counting = false;
  s->torn_fraction = -1.0;
  s->op_filter.clear();
  s->ops.clear();
  RefreshActive();
}

bool FaultInjector::Fired() {
  MutexLock lock(&state_mu_);
  return MutableState()->fired;
}

void FaultInjector::StartCounting() {
  MutexLock lock(&state_mu_);
  State* s = MutableState();
  s->counting = true;
  s->ops.clear();
  RefreshActive();
}

std::vector<std::string> FaultInjector::StopCounting() {
  MutexLock lock(&state_mu_);
  State* s = MutableState();
  s->counting = false;
  std::vector<std::string> out = std::move(s->ops);
  s->ops.clear();
  RefreshActive();
  return out;
}

}  // namespace pxq
