#include "common/io_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <utility>

#include "common/fault_injection.h"

namespace pxq {
namespace {

Status Injected(const char* op, const std::string& path) {
  return Status::IOError(std::string("injected ") + op + " fault: " + path);
}

}  // namespace

WritableFile::~WritableFile() {
  if (file_ != nullptr) std::fclose(file_);
}

WritableFile::WritableFile(WritableFile&& other) noexcept
    : file_(other.file_), path_(std::move(other.path_)) {
  other.file_ = nullptr;
}

WritableFile& WritableFile::operator=(WritableFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    other.file_ = nullptr;
  }
  return *this;
}

Status WritableFile::Open(const std::string& path, bool truncate) {
  if (file_ != nullptr) return Status::InvalidArgument("file already open");
  if (FaultInjector::ShouldFail("open", 0, nullptr)) {
    return Injected("open", path);
  }
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) return Status::IOError("cannot open " + path);
  path_ = path;
  return Status::OK();
}

Status WritableFile::Append(const char* data, size_t n) {
  if (file_ == nullptr) return Status::IOError("file not open: " + path_);
  size_t torn = 0;
  if (FaultInjector::ShouldFail("write", n, &torn)) {
    if (torn > 0 && torn <= n) {
      // Torn write: persist a prefix, as a crash mid-write would. Push
      // it through to the OS so the bytes are really on disk when the
      // test inspects the file.
      std::fwrite(data, 1, torn, file_);
      std::fflush(file_);
    }
    return Injected("write", path_);
  }
  if (n > 0 && std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("write failed: " + path_);
  }
  return Status::OK();
}

Status WritableFile::SyncData() {
  if (file_ == nullptr) return Status::IOError("file not open: " + path_);
  if (FaultInjector::ShouldFail("sync", 0, nullptr)) {
    return Injected("sync", path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed: " + path_);
  }
  if (fsync(fileno(file_)) != 0) {
    return Status::IOError("fsync failed: " + path_);
  }
  return Status::OK();
}

Status WritableFile::Close() {
  if (file_ == nullptr) return Status::OK();
  const bool injected = FaultInjector::ShouldFail("close", 0, nullptr);
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (injected) return Injected("close", path_);
  if (rc != 0) return Status::IOError("close failed: " + path_);
  return Status::OK();
}

StatusOr<int64_t> WritableFile::Offset() {
  if (file_ == nullptr) return Status::IOError("file not open: " + path_);
  const long off = std::ftell(file_);  // NOLINT(google-runtime-int): ftell
  if (off < 0) return Status::IOError("ftell failed: " + path_);
  return static_cast<int64_t>(off);
}

Status WritableFile::TruncateTo(int64_t size) {
  if (file_ == nullptr) return Status::IOError("file not open: " + path_);
  if (FaultInjector::ShouldFail("truncate", 0, nullptr)) {
    return Injected("truncate", path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed: " + path_);
  }
  if (ftruncate(fileno(file_), static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate failed: " + path_);
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("fseek failed: " + path_);
  }
  if (fsync(fileno(file_)) != 0) {
    return Status::IOError("fsync failed: " + path_);
  }
  return Status::OK();
}

Status AtomicRename(const std::string& from, const std::string& to) {
  if (FaultInjector::ShouldFail("rename", 0, nullptr)) {
    return Injected("rename", from);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename " + from + " -> " + to + " failed");
  }
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
  if (FaultInjector::ShouldFail("dirsync", 0, nullptr)) {
    return Injected("dirsync", path);
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError("cannot open directory " + dir);
  const int rc = fsync(fd);
  close(fd);
  if (rc != 0) return Status::IOError("directory fsync failed: " + dir);
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot read " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::IOError("read failed: " + path);
  return out;
}

}  // namespace pxq
