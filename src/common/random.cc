#include "common/random.h"

#include <cmath>

namespace pxq {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the user seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Debiased via rejection; n is tiny relative to 2^64 in practice so the
  // loop almost never iterates.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::Range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Random::Skewed(uint64_t n) {
  if (n <= 1) return 0;
  // Inverse-CDF of the 1/(r+1) weights approximated by exp-spacing; exact
  // harmonic inversion is not needed, only stable skew.
  double u = NextDouble();
  double hn = std::log(static_cast<double>(n) + 1.0);
  auto r = static_cast<uint64_t>(std::exp(u * hn)) - 1;
  return r >= n ? n - 1 : r;
}

}  // namespace pxq
