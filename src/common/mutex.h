// Capability-annotated mutex wrappers: the ONLY place in src/ allowed
// to name std::mutex / std::shared_mutex / std::condition_variable
// directly (enforced by ci/lint_concurrency.py). Everything else locks
// through pxq::Mutex + pxq::MutexLock so Clang's thread-safety
// analysis (-Wthread-safety, promoted to an error) can prove the
// GUARDED_BY / REQUIRES discipline on every build.
//
// The wrappers are zero-cost shims over the std primitives: MutexLock
// is a std::unique_lock so CondVar::Wait can hand it to
// std::condition_variable without translation.
#ifndef PXQ_COMMON_MUTEX_H_
#define PXQ_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace pxq {

/// Plain exclusive mutex, annotated as a capability. Lock directly only
/// in special cases (manual two-phase paths); prefer MutexLock.
class PXQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PXQ_ACQUIRE() { mu_.lock(); }
  void Unlock() PXQ_RELEASE() { mu_.unlock(); }
  bool TryLock() PXQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII critical section over a Mutex (the std::lock_guard /
/// std::unique_lock replacement). Waitable: CondVar::Wait* take the
/// MutexLock so condition-variable loops stay inside the analyzed
/// critical section.
class PXQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PXQ_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() PXQ_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock critical sections. No
/// predicate overloads on purpose: a lambda predicate is analyzed as a
/// separate function that cannot prove it holds the lock, so waits are
/// written as explicit `while (!cond) cv.Wait(lock);` loops — which the
/// analysis checks field access inside of.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Reader/writer mutex capability. NOTE: this wraps std::shared_mutex,
/// whose glibc implementation is reader-preferring — the database's
/// GlobalLock deliberately does NOT use it (writer starvation; see
/// txn/lock_manager.h). Provided for read-mostly state with rare,
/// short writers where preference does not matter, and as the
/// annotated primitive the ROADMAP's per-core reader-slot work will
/// slot behind.
class PXQ_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PXQ_ACQUIRE() { mu_.lock(); }
  void Unlock() PXQ_RELEASE() { mu_.unlock(); }
  void LockShared() PXQ_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() PXQ_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII shared (reader) section over a SharedMutex.
class PXQ_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) PXQ_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() PXQ_RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII exclusive (writer) section over a SharedMutex.
class PXQ_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) PXQ_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() PXQ_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace pxq

#endif  // PXQ_COMMON_MUTEX_H_
