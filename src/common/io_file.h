// Checked, fault-injectable file I/O for the durability path.
//
// The WAL and the checkpoint snapshot writer route every mutating
// filesystem operation through these primitives so that (a) every
// write/flush/fsync return value is checked — an ENOSPC can never
// masquerade as a successful checkpoint — and (b) the deterministic
// fault injector (common/fault_injection.h) can fail any single step
// to prove the crash protocol: each primitive asks the injector first,
// and an injected failure behaves exactly like the real error
// (including torn writes that persist a prefix of the payload).
//
// Reads are deliberately not faulted: recovery code must handle
// arbitrary on-disk bytes anyway, and the tests corrupt files directly.
//
// Thread compatibility: a WritableFile is owned and used by one
// logical writer at a time (the WAL's exclusive commit window, the
// checkpoint path under the global exclusive lock); it adds no locking.
#ifndef PXQ_COMMON_IO_FILE_H_
#define PXQ_COMMON_IO_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace pxq {

/// A buffered file opened for writing ("wb" or "ab"). Move-only; the
/// destructor closes silently (call Close() to observe the error).
class WritableFile {
 public:
  WritableFile() = default;
  ~WritableFile();
  WritableFile(WritableFile&& other) noexcept;
  WritableFile& operator=(WritableFile&& other) noexcept;
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  /// Open `path` for writing; truncate=false appends. Fails (and stays
  /// closed) on an injected or real open error.
  Status Open(const std::string& path, bool truncate);
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Buffered write of n bytes, return value checked. An injected torn
  /// write persists a prefix of `data` and then fails — the state a
  /// crash mid-write leaves behind.
  Status Append(const char* data, size_t n);
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }

  /// fflush + fsync: the data is durable after this returns OK.
  Status SyncData();

  /// Close, reporting the flush error fclose can surface. The file is
  /// closed afterwards even on failure.
  Status Close();

  /// Current file offset (for rollback bookkeeping before an append).
  StatusOr<int64_t> Offset();

  /// Shrink the file to `size` bytes and fsync the truncation. Used to
  /// roll a failed WAL batch append back off the log so a garbage tail
  /// can never shadow later commits.
  Status TruncateTo(int64_t size);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// rename(2) `from` over `to` (atomic within a filesystem).
Status AtomicRename(const std::string& from, const std::string& to);

/// fsync the directory containing `path`, making a rename of `path`
/// itself durable (the rename lives in the directory's data).
Status SyncParentDir(const std::string& path);

/// Slurp a file (recovery-side; not fault-injected). NotFound when the
/// file does not exist.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace pxq

#endif  // PXQ_COMMON_IO_FILE_H_
