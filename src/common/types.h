// Core scalar types of the pre/post plane encoding, shared by every
// module. Terminology follows the paper:
//   pre  - rank of a tuple in the *logical* (document-order) view,
//          including unused tuples. Virtual: never stored.
//   pos  - rank of a tuple in the *physical* pos/size/level table.
//          Also virtual (a MonetDB void column); equals the array index.
//   size - extent of a node's region in the view: the region
//          [pre+1, pre+size] holds exactly the node's descendants plus
//          holes interior to the subtree span (see DESIGN.md).
//   level- depth of the node (root = 0); kNullLevel marks unused tuples.
//   node - immutable node identifier (never changes over a node's life).
#ifndef PXQ_COMMON_TYPES_H_
#define PXQ_COMMON_TYPES_H_

#include <cstdint>

namespace pxq {

using PreId = int64_t;    // logical view position
using PosId = int64_t;    // physical table position
using NodeId = int64_t;   // immutable node identity
using QnameId = int32_t;  // index into the qname pool
using ValueId = int32_t;  // index into a value pool (text/comment/pi/prop)
using PageId = int64_t;   // physical page number
using TxnId = uint64_t;

inline constexpr int16_t kNullLevel = -1;   // marks an unused (hole) tuple
inline constexpr PosId kNullPos = -1;       // node/pos entry of a deleted node
inline constexpr ValueId kNullValue = -1;
inline constexpr NodeId kNullNode = -1;
inline constexpr PreId kNullPre = -1;

/// Node kind stored per tuple; determines what `ref` points at (Fig. 5/6):
/// elements reference the qname pool, value kinds reference their pool.
enum class NodeKind : uint8_t {
  kElement = 0,
  kText = 1,
  kComment = 2,
  kPi = 3,       // processing instruction; ref = value pool ("target data")
  kUnused = 4,   // hole tuple (level is kNullLevel as well)
};

}  // namespace pxq

#endif  // PXQ_COMMON_TYPES_H_
