// XML output builder: the inverse of the parser. Consumers push events
// (start element / text / ...) and read back a well-formed document
// string. Used by the store serializer, test oracles and examples.
#ifndef PXQ_XML_SERIALIZER_H_
#define PXQ_XML_SERIALIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/parser.h"

namespace pxq::xml {

struct SerializeOptions {
  /// Emit newline + two-space indentation per depth level.
  bool pretty = false;
};

/// Streaming writer with matching-tag bookkeeping. All text is escaped.
class Serializer {
 public:
  explicit Serializer(SerializeOptions options = {});

  void StartElement(std::string_view name,
                    const std::vector<Attribute>& attrs = {});
  void EndElement();
  void Text(std::string_view text);
  void Comment(std::string_view text);
  void Pi(std::string_view target, std::string_view data);

  /// Finish and return the document. Returns Corruption if elements are
  /// still open.
  StatusOr<std::string> Finish();

  /// Current nesting depth (for tests).
  size_t depth() const { return open_.size(); }

 private:
  void Indent();
  void CloseStartTagIfOpen();

  SerializeOptions options_;
  std::string out_;
  std::vector<std::string> open_;
  bool start_tag_open_ = false;   // "<name ..." emitted, '>' pending
  bool last_was_text_ = false;    // suppress indent after inline text
};

/// EventHandler adapter: parse into a Serializer (round-trip helper).
class SerializingHandler : public EventHandler {
 public:
  explicit SerializingHandler(Serializer* out) : out_(out) {}
  Status OnStartElement(std::string_view name,
                        const std::vector<Attribute>& attrs) override {
    out_->StartElement(name, attrs);
    return Status::OK();
  }
  Status OnEndElement(std::string_view) override {
    out_->EndElement();
    return Status::OK();
  }
  Status OnText(std::string_view text) override {
    out_->Text(text);
    return Status::OK();
  }
  Status OnComment(std::string_view text) override {
    out_->Comment(text);
    return Status::OK();
  }
  Status OnPi(std::string_view target, std::string_view data) override {
    out_->Pi(target, data);
    return Status::OK();
  }

 private:
  Serializer* out_;
};

}  // namespace pxq::xml

#endif  // PXQ_XML_SERIALIZER_H_
