#include "xml/parser.h"

#include <cstdint>

#include "common/strings.h"

namespace pxq::xml {
namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}
bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Cursor-based recursive-descent parser over the input buffer.
class Parser {
 public:
  Parser(std::string_view in, EventHandler* handler,
         const ParseOptions& options)
      : in_(in), handler_(handler), options_(options) {}

  Status Run() {
    PXQ_RETURN_IF_ERROR(SkipProlog());
    if (AtEnd() || Peek() != '<') {
      return Err("expected root element");
    }
    PXQ_RETURN_IF_ERROR(ParseElement());
    SkipMisc();
    if (!AtEnd()) return Err("content after root element");
    return Status::OK();
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }
  bool Consume(std::string_view token) {
    if (in_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  Status Err(const std::string& what) const {
    return Status::ParseError(
        StrFormat("%s at byte %zu", what.c_str(), pos_));
  }

  // <?xml ...?>, whitespace, comments, PIs, DOCTYPE before the root.
  Status SkipProlog() {
    SkipSpace();
    if (Consume("<?xml")) {
      size_t end = in_.find("?>", pos_);
      if (end == std::string_view::npos) return Err("unterminated xml decl");
      pos_ = end + 2;
    }
    SkipMisc();
    if (Consume("<!DOCTYPE")) {
      // Skip to the matching '>' honoring an optional [...] internal subset.
      int bracket = 0;
      while (!AtEnd()) {
        char c = Peek();
        Advance();
        if (c == '[') ++bracket;
        else if (c == ']') --bracket;
        else if (c == '>' && bracket == 0) break;
      }
      SkipMisc();
    }
    return Status::OK();
  }

  // Whitespace / comments / PIs allowed outside the root element.
  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (in_.substr(pos_, 4) == "<!--") {
        size_t end = in_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      } else if (in_.substr(pos_, 2) == "<?") {
        size_t end = in_.find("?>", pos_ + 2);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else {
        return;
      }
    }
  }

  Status ParseName(std::string* out) {
    if (AtEnd() || !IsNameStart(Peek())) return Err("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    out->assign(in_.substr(start, pos_ - start));
    return Status::OK();
  }

  // Decode entities in `raw` into *out.
  Status DecodeText(std::string_view raw, std::string* out) {
    out->clear();
    out->reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out->push_back(raw[i]);
        ++i;
        continue;
      }
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") *out += '&';
      else if (ent == "lt") *out += '<';
      else if (ent == "gt") *out += '>';
      else if (ent == "quot") *out += '"';
      else if (ent == "apos") *out += '\'';
      else if (!ent.empty() && ent[0] == '#') {
        uint64_t cp = 0;
        bool ok = false;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          ok = ent.size() > 2;
          for (size_t k = 2; ok && k < ent.size(); ++k) {
            char c = ent[k];
            uint64_t d;
            if (c >= '0' && c <= '9') d = static_cast<uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f') d = static_cast<uint64_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') d = static_cast<uint64_t>(c - 'A' + 10);
            else { ok = false; break; }
            cp = cp * 16 + d;
          }
        } else {
          ok = ParseUint(ent.substr(1), &cp);
        }
        if (!ok || cp == 0 || cp > 0x10FFFF) {
          return Status::ParseError("bad character reference &" +
                                    std::string(ent) + ";");
        }
        AppendUtf8(static_cast<uint32_t>(cp), out);
      } else {
        return Status::ParseError("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseAttributes(std::vector<Attribute>* attrs, bool* self_closing) {
    attrs->clear();
    *self_closing = false;
    for (;;) {
      SkipSpace();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>') {
        Advance();
        return Status::OK();
      }
      if (Peek() == '/' && PeekAt(1) == '>') {
        Advance(2);
        *self_closing = true;
        return Status::OK();
      }
      Attribute a;
      PXQ_RETURN_IF_ERROR(ParseName(&a.name));
      SkipSpace();
      if (AtEnd() || Peek() != '=') return Err("expected '=' in attribute");
      Advance();
      SkipSpace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '<') return Err("'<' in attribute value");
        Advance();
      }
      if (AtEnd()) return Err("unterminated attribute value");
      PXQ_RETURN_IF_ERROR(
          DecodeText(in_.substr(start, pos_ - start), &a.value));
      Advance();  // closing quote
      for (const Attribute& prev : *attrs) {
        if (prev.name == a.name) {
          return Err("duplicate attribute '" + a.name + "'");
        }
      }
      attrs->push_back(std::move(a));
    }
  }

  Status ParseElement() {
    // Caller guarantees Peek() == '<' and this is a start tag.
    Advance();  // '<'
    std::string name;
    PXQ_RETURN_IF_ERROR(ParseName(&name));
    std::vector<Attribute> attrs;
    bool self_closing = false;
    PXQ_RETURN_IF_ERROR(ParseAttributes(&attrs, &self_closing));
    PXQ_RETURN_IF_ERROR(handler_->OnStartElement(name, attrs));
    if (self_closing) return handler_->OnEndElement(name);
    PXQ_RETURN_IF_ERROR(ParseContent(name));
    return Status::OK();
  }

  // Content of an open element up to and including its end tag.
  Status ParseContent(const std::string& open_name) {
    std::string text_buf;
    for (;;) {
      if (AtEnd()) return Err("unterminated element <" + open_name + ">");
      if (Peek() != '<') {
        size_t start = pos_;
        while (!AtEnd() && Peek() != '<') Advance();
        std::string decoded;
        PXQ_RETURN_IF_ERROR(
            DecodeText(in_.substr(start, pos_ - start), &decoded));
        text_buf += decoded;
        continue;
      }
      // Some kind of markup. First flush pending text unless it is
      // droppable whitespace.
      if (Consume("<![CDATA[")) {
        size_t end = in_.find("]]>", pos_);
        if (end == std::string_view::npos) return Err("unterminated CDATA");
        text_buf.append(in_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      PXQ_RETURN_IF_ERROR(FlushText(&text_buf));
      if (Consume("<!--")) {
        size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) return Err("unterminated comment");
        std::string_view body = in_.substr(pos_, end - pos_);
        pos_ = end + 3;
        PXQ_RETURN_IF_ERROR(handler_->OnComment(body));
        continue;
      }
      if (Consume("<?")) {
        std::string target;
        PXQ_RETURN_IF_ERROR(ParseName(&target));
        SkipSpace();
        size_t end = in_.find("?>", pos_);
        if (end == std::string_view::npos) return Err("unterminated PI");
        std::string_view data = in_.substr(pos_, end - pos_);
        pos_ = end + 2;
        PXQ_RETURN_IF_ERROR(handler_->OnPi(target, data));
        continue;
      }
      if (Peek() == '<' && PeekAt(1) == '/') {
        Advance(2);
        std::string name;
        PXQ_RETURN_IF_ERROR(ParseName(&name));
        SkipSpace();
        if (AtEnd() || Peek() != '>') return Err("malformed end tag");
        Advance();
        if (name != open_name) {
          return Err("mismatched end tag </" + name + "> for <" + open_name +
                     ">");
        }
        return handler_->OnEndElement(name);
      }
      PXQ_RETURN_IF_ERROR(ParseElement());
    }
  }

  Status FlushText(std::string* buf) {
    if (buf->empty()) return Status::OK();
    bool all_ws = true;
    for (char c : *buf) {
      if (!IsSpace(c)) {
        all_ws = false;
        break;
      }
    }
    Status s = Status::OK();
    if (!all_ws || !options_.skip_whitespace_text) {
      s = handler_->OnText(*buf);
    }
    buf->clear();
    return s;
  }

  std::string_view in_;
  EventHandler* handler_;
  ParseOptions options_;
  size_t pos_ = 0;
};

}  // namespace

Status Parse(std::string_view input, EventHandler* handler,
             const ParseOptions& options) {
  Parser p(input, handler, options);
  return p.Run();
}

}  // namespace pxq::xml
