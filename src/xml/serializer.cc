#include "xml/serializer.h"

#include "common/strings.h"

namespace pxq::xml {

Serializer::Serializer(SerializeOptions options) : options_(options) {}

void Serializer::Indent() {
  if (!options_.pretty || last_was_text_) return;
  if (!out_.empty()) out_ += '\n';
  out_.append(open_.size() * 2, ' ');
}

void Serializer::CloseStartTagIfOpen() {
  if (start_tag_open_) {
    out_ += '>';
    start_tag_open_ = false;
  }
}

void Serializer::StartElement(std::string_view name,
                              const std::vector<Attribute>& attrs) {
  CloseStartTagIfOpen();
  Indent();
  out_ += '<';
  out_ += name;
  for (const Attribute& a : attrs) {
    out_ += ' ';
    out_ += a.name;
    out_ += "=\"";
    out_ += XmlEscape(a.value, /*attribute=*/true);
    out_ += '"';
  }
  open_.emplace_back(name);
  start_tag_open_ = true;
  last_was_text_ = false;
}

void Serializer::EndElement() {
  if (open_.empty()) return;  // tolerated; Finish() reports imbalance
  std::string name = open_.back();
  open_.pop_back();
  if (start_tag_open_) {
    out_ += "/>";
    start_tag_open_ = false;
  } else {
    Indent();
    out_ += "</";
    out_ += name;
    out_ += '>';
  }
  last_was_text_ = false;
}

void Serializer::Text(std::string_view text) {
  CloseStartTagIfOpen();
  out_ += XmlEscape(text, /*attribute=*/false);
  last_was_text_ = true;
}

void Serializer::Comment(std::string_view text) {
  CloseStartTagIfOpen();
  Indent();
  out_ += "<!--";
  out_ += text;
  out_ += "-->";
  last_was_text_ = false;
}

void Serializer::Pi(std::string_view target, std::string_view data) {
  CloseStartTagIfOpen();
  Indent();
  out_ += "<?";
  out_ += target;
  if (!data.empty()) {
    out_ += ' ';
    out_ += data;
  }
  out_ += "?>";
  last_was_text_ = false;
}

StatusOr<std::string> Serializer::Finish() {
  if (!open_.empty()) {
    return Status::Corruption(
        StrFormat("serializer finished with %zu open elements", open_.size()));
  }
  return std::move(out_);
}

}  // namespace pxq::xml
