// Non-validating XML parser producing a SAX-style event stream. This is
// the front half of the document shredder: events are consumed by
// storage::Shredder to build the pre/size/level tables.
//
// Supported: elements, attributes, character data, CDATA sections,
// comments, processing instructions, the five predefined entities plus
// numeric character references, an ignored <?xml?> declaration and an
// ignored (well-bracketed) DOCTYPE. Namespaces are treated lexically
// (qualified names are opaque strings), matching the paper's qn table.
#ifndef PXQ_XML_PARSER_H_
#define PXQ_XML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pxq::xml {

struct Attribute {
  std::string name;
  std::string value;
};

/// Receiver of parse events. Callbacks return Status so the shredder can
/// abort the parse (e.g. on storage errors) without exceptions.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual Status OnStartElement(std::string_view name,
                                const std::vector<Attribute>& attrs) = 0;
  virtual Status OnEndElement(std::string_view name) = 0;
  virtual Status OnText(std::string_view text) = 0;
  virtual Status OnComment(std::string_view text) = 0;
  virtual Status OnPi(std::string_view target, std::string_view data) = 0;
};

struct ParseOptions {
  /// Drop text nodes that consist solely of whitespace (indentation).
  /// Keeps store sizes comparable across pretty-printed inputs.
  bool skip_whitespace_text = true;
};

/// Parse a complete document; events are delivered in document order.
/// Returns ParseError with a byte offset on malformed input.
Status Parse(std::string_view input, EventHandler* handler,
             const ParseOptions& options = {});

}  // namespace pxq::xml

#endif  // PXQ_XML_PARSER_H_
