#!/usr/bin/env python3
"""Repo-specific concurrency lint: the rules Clang's thread-safety
analysis cannot express.

Rules (over src/**/*.h, src/**/*.cc unless noted):

  1. no-naked-mutex      std::mutex / std::shared_mutex /
                         std::condition_variable / std::lock_guard /
                         std::unique_lock / std::scoped_lock /
                         std::shared_lock may only be named in
                         src/common/mutex.h (the annotated wrappers).
                         Everything else locks through pxq::Mutex /
                         pxq::MutexLock so the capability analysis sees
                         every critical section.

  2. no-relaxed-pointer  memory_order_relaxed is forbidden on loads /
                         stores / exchanges of pointer-typed
                         std::atomic members. Snapshot and chunk
                         publication must stay release/acquire: a
                         relaxed pointer load may observe the pointer
                         before the pointee's initialization on
                         weakly-ordered hardware.

  3. relaxed-rationale   every remaining memory_order_relaxed operation
                         (the intentionally-relaxed stat counters) must
                         have a `// relaxed:` rationale comment on the
                         same line or within the preceding
                         RATIONALE_WINDOW lines, so each relaxation is
                         a reviewed decision, not a habit.

  4. slot-explicit-order in the global lock's sharded reader-slot files
                         (src/txn/lock_manager.{h,cc}) every atomic
                         load/store/RMW must spell an explicit
                         std::memory_order_* argument on the same line
                         or within the statement's next few lines. The
                         slot protocol's reader-vs-writer visibility is
                         a seq_cst store-buffer (Dekker) argument — an
                         implicit-order op there is an unreviewed
                         ordering decision. relaxed ops additionally
                         fall under rule 3's rationale requirement.

  5. slot-encapsulation  the reader-slot state members (slots_,
                         overflow_, writer_state_) may be named only in
                         src/txn/lock_manager.{h,cc}. No code outside
                         the lock may touch or even read slot state —
                         the lock's invariants hold only through its
                         public Lock/Unlock/stats interface.

Exit status 0 when clean; 1 with one `file:line: [rule] message` per
violation otherwise. Run from anywhere: paths resolve against the repo
root (the parent of this script's directory) unless --root is given.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# The one file allowed to name the std synchronization primitives.
WRAPPER_ALLOWLIST = {os.path.join("src", "common", "mutex.h")}

# How many lines above a relaxed op a `// relaxed:` comment may sit
# (multi-line call expressions put the comment above the statement).
RATIONALE_WINDOW = 4

NAKED_PRIMITIVE_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)

RELAXED_RE = re.compile(r"\bstd::memory_order_relaxed\b|\bmemory_order_relaxed\b")
RELAXED_COMMENT_RE = re.compile(r"//\s*relaxed:")

# A pointer-typed atomic declaration:  std::atomic<T*> name  (possibly
# nested, e.g. std::atomic<std::atomic<Chunk*>*>), including pointers
# TO such atomics (std::atomic<Chunk*>* t = ...) — an op through those
# still touches an atomic whose value is a pointer. We only need the
# variable names, matched per file — member names are unique enough
# within a translation unit for a lint.
ATOMIC_DECL_RE = re.compile(
    r"std::atomic<\s*(?P<type>[^;{}()]*?)\s*>\s*\**\s*(?P<name>\w+)\s*[{;=\[]"
)

# Operations on a named atomic:  name.load( / name.store( / name.exchange(
# and the indexed form  name[i].load(  used by atomic arrays/tables.
ATOMIC_OP_RE = re.compile(
    r"(?P<name>\w+)\s*(?:\[[^\]]*\])?\s*\.\s*"
    r"(?:load|store|exchange|compare_exchange_\w+|fetch_\w+)\s*\("
)

# The global lock's sharded reader-slot implementation (rule 4: every
# atomic op here spells its memory_order) and the slot-state member
# names nothing else may touch (rule 5).
SLOT_FILES = {
    os.path.join("src", "txn", "lock_manager.h"),
    os.path.join("src", "txn", "lock_manager.cc"),
}
SLOT_STATE_RE = re.compile(r"\b(slots_|overflow_|writer_state_)\b")
MEMORY_ORDER_RE = re.compile(r"\bstd::memory_order_\w+|\bmemory_order_\w+")


def strip_comments(line: str) -> str:
    """Drop // comments so commented-out code never trips a rule."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def find_pointer_atomics(text: str) -> set[str]:
    """Names of atomic variables in `text` whose value type is a pointer."""
    names = set()
    for m in ATOMIC_DECL_RE.finditer(text):
        if "*" in m.group("type"):
            names.add(m.group("name"))
    return names


def lint_file(relpath: str, text: str) -> list[tuple[str, int, str, str]]:
    """Returns (file, line, rule, message) violations for one file."""
    violations = []
    lines = text.splitlines()
    pointer_atomics = find_pointer_atomics(text)
    in_block_comment = False

    for i, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and "*/" not in line[start:]:
            in_block_comment = True
            line = line[:start]
        code = strip_comments(line)

        if relpath not in WRAPPER_ALLOWLIST:
            m = NAKED_PRIMITIVE_RE.search(code)
            if m:
                violations.append(
                    (relpath, i, "no-naked-mutex",
                     f"raw std::{m.group(1)} outside src/common/mutex.h — "
                     "use the pxq::Mutex wrappers so the thread-safety "
                     "analysis sees this critical section"))

        if relpath in SLOT_FILES:
            # Rule 4: atomic ops in the lock files must carry an
            # explicit memory_order — on this line, or (multi-line call
            # expressions) within the next RATIONALE_WINDOW lines.
            if ATOMIC_OP_RE.search(code):
                stmt = [code] + [
                    strip_comments(l)
                    for l in lines[i : i + RATIONALE_WINDOW - 1]
                ]
                if not any(MEMORY_ORDER_RE.search(s) for s in stmt):
                    violations.append(
                        (relpath, i, "slot-explicit-order",
                         "atomic operation in the reader-slot lock "
                         "without an explicit std::memory_order_* — the "
                         "slot protocol's ordering is load-bearing; "
                         "spell it (and justify relaxed per rule 3)"))
        elif SLOT_STATE_RE.search(code):
            # Rule 5: slot state is private to the lock.
            violations.append(
                (relpath, i, "slot-encapsulation",
                 f"'{SLOT_STATE_RE.search(code).group(1)}' named outside "
                 "src/txn/lock_manager.{h,cc} — reader-slot state may "
                 "only be touched through the GlobalLock interface"))

        if RELAXED_RE.search(code):
            # Which atomic is this operation on?
            op = ATOMIC_OP_RE.search(code)
            # Multi-line calls: the op name may sit on a previous line.
            j = i - 1
            while op is None and j >= 1 and i - j <= RATIONALE_WINDOW:
                op = ATOMIC_OP_RE.search(strip_comments(lines[j - 1]))
                j -= 1
            if op is not None and op.group("name") in pointer_atomics:
                violations.append(
                    (relpath, i, "no-relaxed-pointer",
                     f"memory_order_relaxed on pointer atomic "
                     f"'{op.group('name')}' — publication must stay "
                     "release/acquire"))
                continue
            # Rule 3: rationale comment on this line or just above.
            window = [raw] + lines[max(0, i - 1 - RATIONALE_WINDOW) : i - 1]
            if not any(RELAXED_COMMENT_RE.search(w) for w in window):
                violations.append(
                    (relpath, i, "relaxed-rationale",
                     "relaxed atomic without a `// relaxed:` rationale "
                     f"comment within {RATIONALE_WINDOW} lines"))
    return violations


def collect_sources(root: str) -> list[str]:
    out = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for f in sorted(filenames):
            if f.endswith((".h", ".cc", ".cpp", ".hpp")):
                out.append(os.path.relpath(os.path.join(dirpath, f), root))
    return sorted(out)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of ci/)")
    args = parser.parse_args(argv)

    violations = []
    for rel in collect_sources(args.root):
        with open(os.path.join(args.root, rel), encoding="utf-8") as fh:
            violations.extend(lint_file(rel, fh.read()))

    for path, line, rule, msg in violations:
        print(f"{path}:{line}: [{rule}] {msg}")
    if violations:
        print(f"lint_concurrency: {len(violations)} violation(s)")
        return 1
    print("lint_concurrency: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
