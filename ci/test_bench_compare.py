"""Unit tests for ci/bench_compare.py (run: python3 -m unittest)."""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare


def bench_json(entries):
    """Google-Benchmark JSON doc from (name, real_time, unit[, run_type])."""
    benches = []
    for e in entries:
        b = {"name": e[0], "real_time": e[1], "time_unit": e[2]}
        if len(e) > 3:
            b["run_type"] = e[3]
        benches.append(b)
    return {"benchmarks": benches}


class TempJson:
    """Write docs to temp files; yields their paths."""

    def __init__(self, *docs):
        self.docs = docs
        self.paths = []

    def __enter__(self):
        for doc in self.docs:
            f = tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False)
            json.dump(doc, f)
            f.close()
            self.paths.append(f.name)
        return self.paths

    def __exit__(self, *exc):
        for p in self.paths:
            os.unlink(p)


def run_main(args):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = bench_compare.main(args)
    return rc, out.getvalue()


class LoadUnitNormalization(unittest.TestCase):
    def test_units_normalize_to_ns(self):
        doc = bench_json([
            ("BM_ns", 1500.0, "ns"),
            ("BM_us", 1.5, "us"),
            ("BM_ms", 1.5, "ms"),
            ("BM_s", 1.5, "s"),
        ])
        with TempJson(doc) as (path,):
            loaded = bench_compare.load(path)
        self.assertEqual(loaded["BM_ns"], 1500.0)
        self.assertEqual(loaded["BM_us"], 1500.0)
        self.assertEqual(loaded["BM_ms"], 1.5e6)
        self.assertEqual(loaded["BM_s"], 1.5e9)

    def test_missing_time_unit_defaults_to_ns(self):
        doc = {"benchmarks": [{"name": "BM_x", "real_time": 42.0}]}
        with TempJson(doc) as (path,):
            loaded = bench_compare.load(path)
        self.assertEqual(loaded["BM_x"], 42.0)

    def test_unknown_unit_and_aggregates_skipped(self):
        doc = bench_json([
            ("BM_weird", 1.0, "fortnights"),
            ("BM_mean", 1.0, "ns", "aggregate"),
            ("BM_keep", 2.0, "ns"),
        ])
        with TempJson(doc) as (path,):
            loaded = bench_compare.load(path)
        self.assertEqual(set(loaded), {"BM_keep"})

    def test_missing_real_time_skipped(self):
        doc = {"benchmarks": [{"name": "BM_x", "time_unit": "ns"}]}
        with TempJson(doc) as (path,):
            self.assertEqual(bench_compare.load(path), {})

    def test_duplicate_names_last_wins(self):
        doc = bench_json([("BM_x", 1.0, "ns"), ("BM_x", 9.0, "ns")])
        with TempJson(doc) as (path,):
            self.assertEqual(bench_compare.load(path), {"BM_x": 9.0})


class MissingInputs(unittest.TestCase):
    def test_missing_baseline_is_not_a_failure(self):
        cur = bench_json([("BM_PlanCache_hit", 100.0, "ns")])
        with TempJson(cur) as (cur_path,):
            rc, out = run_main(
                ["/nonexistent/baseline.json", cur_path, "--fail"])
        self.assertEqual(rc, 0)
        self.assertIn("cannot load input", out)

    def test_corrupt_baseline_is_not_a_failure(self):
        cur = bench_json([("BM_PlanCache_hit", 100.0, "ns")])
        with TempJson(cur) as (cur_path,):
            bad = tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False)
            bad.write("{not json")
            bad.close()
            try:
                rc, out = run_main([bad.name, cur_path, "--fail"])
            finally:
                os.unlink(bad.name)
        self.assertEqual(rc, 0)
        self.assertIn("cannot load input", out)

    def test_new_benchmark_reported_not_failed(self):
        base = bench_json([])
        cur = bench_json([("BM_PlanCache_new", 100.0, "ns")])
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])
        self.assertEqual(rc, 0)
        self.assertIn("NEW", out)

    def test_gone_benchmark_reported_not_failed(self):
        base = bench_json([("BM_PlanCache_old", 100.0, "ns")])
        cur = bench_json([])
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])
        self.assertEqual(rc, 0)
        self.assertIn("GONE", out)


class ThresholdLogic(unittest.TestCase):
    def _compare(self, base_ns, cur_ns, extra):
        base = bench_json([("BM_PlanCache_x", base_ns, "ns")])
        cur = bench_json([("BM_PlanCache_x", cur_ns, "ns")])
        with TempJson(base, cur) as (b, c):
            return run_main([b, c] + extra)

    def test_regression_beyond_threshold_fails_with_fail_flag(self):
        rc, out = self._compare(100.0, 200.0, ["--fail"])
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSED", out)

    def test_regression_without_fail_flag_warns_only(self):
        rc, out = self._compare(100.0, 200.0, [])
        self.assertEqual(rc, 0)
        self.assertIn("REGRESSED", out)

    def test_within_threshold_passes(self):
        rc, out = self._compare(100.0, 120.0, ["--fail"])
        self.assertEqual(rc, 0)
        self.assertIn("no regressions", out)

    def test_exactly_at_threshold_passes(self):
        # delta > threshold is a regression; == is not.
        rc, _ = self._compare(100.0, 125.0, ["--fail"])
        self.assertEqual(rc, 0)

    def test_custom_threshold(self):
        rc, _ = self._compare(100.0, 120.0, ["--fail", "--threshold", "0.1"])
        self.assertEqual(rc, 1)

    def test_improvement_never_fails(self):
        rc, out = self._compare(200.0, 100.0, ["--fail"])
        self.assertEqual(rc, 0)
        self.assertIn("improved", out)

    def test_cross_unit_comparison(self):
        # 100us baseline vs 250000ns current = 2.5x — a regression even
        # though the raw real_time numbers (100 vs 250000) differ in unit.
        base = bench_json([("BM_PlanCache_x", 100.0, "us")])
        cur = bench_json([("BM_PlanCache_x", 250000.0, "ns")])
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSED", out)

    def test_filter_excludes_nonmatching_names(self):
        base = bench_json([("BM_Other_x", 100.0, "ns")])
        cur = bench_json([("BM_Other_x", 900.0, "ns")])
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])  # default filter
        self.assertEqual(rc, 0)
        self.assertNotIn("REGRESSED", out)

    def test_zero_baseline_skipped(self):
        rc, _ = self._compare(0.0, 100.0, ["--fail"])
        self.assertEqual(rc, 0)


class ConcurrencyBenchWatchList(unittest.TestCase):
    """BM_Concurrent.* (bench_concurrency's reader-scaling and
    group-commit legs) is on the default --fail watch list."""

    def test_concurrent_read_regression_fails(self):
        base = bench_json(
            [("BM_ConcurrentReadAcquire/threads:16", 100.0, "ns")])
        cur = bench_json(
            [("BM_ConcurrentReadAcquire/threads:16", 300.0, "ns")])
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])  # default filter
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSED", out)

    def test_group_commit_regression_fails(self):
        base = bench_json(
            [("BM_ConcurrentGroupCommit/writers:8", 1e6, "ns")])
        cur = bench_json(
            [("BM_ConcurrentGroupCommit/writers:8", 2e6, "ns")])
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSED", out)

    def test_concurrent_within_threshold_passes(self):
        base = bench_json(
            [("BM_ConcurrentReadAcquire/threads:32", 100.0, "ns")])
        cur = bench_json(
            [("BM_ConcurrentReadAcquire/threads:32", 110.0, "ns")])
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])
        self.assertEqual(rc, 0)
        self.assertIn("no regressions", out)


class SelectivityBenchWatchList(unittest.TestCase):
    """BM_PredicateReorder* / BM_CascadeOrder* (bench_micro's
    selectivity-planning legs) are on the default --fail watch list: a
    planner change that degrades the cost-based legs toward the
    syntactic ones is a regression, not noise."""

    def test_predicate_reorder_regression_fails(self):
        base = bench_json([("BM_PredicateReorderCostBased", 3.0, "us")])
        cur = bench_json([("BM_PredicateReorderCostBased", 9.0, "us")])
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])  # default filter
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSED", out)

    def test_cascade_order_regression_fails(self):
        base = bench_json([("BM_CascadeOrderCostBased", 15.0, "us")])
        cur = bench_json([("BM_CascadeOrderCostBased", 40.0, "us")])
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])
        self.assertEqual(rc, 1)
        self.assertIn("REGRESSED", out)

    def test_selectivity_legs_within_threshold_pass(self):
        base = bench_json(
            [
                ("BM_PredicateReorderSyntactic", 90.0, "us"),
                ("BM_CascadeOrderSyntactic", 17.0, "us"),
            ]
        )
        cur = bench_json(
            [
                ("BM_PredicateReorderSyntactic", 95.0, "us"),
                ("BM_CascadeOrderSyntactic", 18.0, "us"),
            ]
        )
        with TempJson(base, cur) as (b, c):
            rc, out = run_main([b, c, "--fail"])
        self.assertEqual(rc, 0)
        self.assertIn("no regressions", out)


if __name__ == "__main__":
    unittest.main()
