#!/usr/bin/env python3
"""Perf-trajectory gate: diff two Google-Benchmark JSON files by name.

Compares real_time per benchmark between a baseline (the previous
commit's BENCH_<compiler>.json artifact) and the current run, after
normalizing time units. Benchmarks missing from either side are
reported but never fail the comparison (benches come and go).

Warn-only by default: CI runners are noisy, so the trajectory is a
trend line, not a hard gate — pass --fail to turn regressions beyond
the threshold into a nonzero exit (used for the plan-cache, deep-path,
and concurrency benches — plan-cache/deep-path costs are dominated
by in-memory work, and BM_Concurrent.* reader-scaling regressions
are exactly what the sharded-lock redesign must not reintroduce).

Usage:
  bench_compare.py baseline.json current.json \
      [--filter REGEX] [--threshold 0.25] [--fail]
"""

import argparse
import json
import re
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    """name -> real_time in ns (last entry wins on duplicate names)."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = _UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None or "real_time" not in b:
            continue
        out[b["name"]] = b["real_time"] * unit
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--filter",
        default=r"BM_(PlanCache|DeepPath|Concurrent|PredicateReorder|CascadeOrder)",
        help="only compare benchmarks whose name matches this regex",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative real_time growth that counts as a regression",
    )
    ap.add_argument(
        "--fail",
        action="store_true",
        help="exit nonzero when any regression exceeds the threshold",
    )
    args = ap.parse_args(argv)

    try:
        base = load(args.baseline)
        cur = load(args.current)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot load input: {e}")
        return 0  # missing/corrupt baseline is not a failure

    pat = re.compile(args.filter)
    regressions = []
    for name in sorted(cur):
        if not pat.search(name):
            continue
        if name not in base:
            print(f"  NEW      {name}: {cur[name]:.0f}ns (no baseline)")
            continue
        b, c = base[name], cur[name]
        if b <= 0:
            continue
        delta = (c - b) / b
        tag = "ok"
        if delta > args.threshold:
            tag = "REGRESSED"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            tag = "improved"
        print(f"  {tag:10s}{name}: {b:.0f}ns -> {c:.0f}ns ({delta:+.1%})")
    for name in sorted(set(base) - set(cur)):
        if pat.search(name):
            print(f"  GONE     {name} (present in baseline only)")

    if regressions:
        print(
            f"bench_compare: {len(regressions)} benchmark(s) regressed "
            f"beyond {args.threshold:.0%}:"
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        return 1 if args.fail else 0
    print("bench_compare: no regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
