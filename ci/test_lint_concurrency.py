"""Unit tests for ci/lint_concurrency.py (run: python3 -m unittest)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_concurrency as lint


def rules(violations):
    return [v[2] for v in violations]


class NakedMutexRule(unittest.TestCase):
    def test_flags_raw_std_mutex(self):
        v = lint.lint_file("src/foo.h", "  std::mutex mu_;\n")
        self.assertEqual(rules(v), ["no-naked-mutex"])

    def test_flags_lock_guard_and_friends(self):
        for prim in ("std::lock_guard<std::mutex> l(mu_);",
                     "std::unique_lock<std::mutex> l(mu_);",
                     "std::scoped_lock l(a, b);",
                     "std::shared_lock l(mu_);",
                     "std::shared_mutex mu_;",
                     "std::condition_variable cv_;",
                     "std::condition_variable_any cv_;"):
            with self.subTest(prim=prim):
                v = lint.lint_file("src/foo.cc", prim + "\n")
                self.assertEqual(rules(v), ["no-naked-mutex"])

    def test_wrapper_header_is_exempt(self):
        v = lint.lint_file(os.path.join("src", "common", "mutex.h"),
                           "  std::mutex mu_;\n  std::shared_mutex s_;\n")
        self.assertEqual(v, [])

    def test_comments_do_not_trip(self):
        v = lint.lint_file("src/foo.h",
                           "// replaced std::mutex with pxq::Mutex\n")
        self.assertEqual(v, [])

    def test_block_comments_do_not_trip(self):
        v = lint.lint_file(
            "src/foo.h",
            "/* historical note:\n   std::mutex mu_;\n   was here */\n")
        self.assertEqual(v, [])

    def test_pxq_wrappers_are_fine(self):
        v = lint.lint_file("src/foo.h",
                           "  pxq::Mutex mu_;\n  MutexLock lock(&mu_);\n")
        self.assertEqual(v, [])


class RelaxedPointerRule(unittest.TestCase):
    def test_flags_relaxed_load_of_pointer_atomic(self):
        src = ("std::atomic<const Snap*> snap_{nullptr};\n"
               "void f() {\n"
               "  auto* s = snap_.load(std::memory_order_relaxed);\n"
               "}\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])

    def test_flags_relaxed_store_of_pointer_atomic(self):
        src = ("std::atomic<Node*> head_{nullptr};\n"
               "void g(Node* n) { head_.store(n, std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])

    def test_flags_indexed_atomic_table(self):
        src = ("std::atomic<Chunk*>* t = table();\n"
               "void h() { delete t[0].load(std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])

    def test_flags_multiline_relaxed_pointer_op(self):
        src = ("std::atomic<const Snap*> snap_{nullptr};\n"
               "void f() {\n"
               "  auto* s = snap_.load(\n"
               "      std::memory_order_relaxed);\n"
               "}\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])

    def test_acquire_pointer_load_is_fine(self):
        src = ("std::atomic<const Snap*> snap_{nullptr};\n"
               "void f() { auto* s = snap_.load(std::memory_order_acquire); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(v, [])

    def test_rationale_comment_does_not_excuse_pointer_relaxation(self):
        src = ("std::atomic<Node*> head_{nullptr};\n"
               "// relaxed: looks documented but is still forbidden\n"
               "void g() { head_.load(std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])


class RelaxedRationaleRule(unittest.TestCase):
    def test_flags_uncommented_relaxed_counter(self):
        src = ("std::atomic<int64_t> hits_{0};\n"
               "void f() { hits_.fetch_add(1, std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["relaxed-rationale"])

    def test_same_line_comment_passes(self):
        src = ("std::atomic<int64_t> hits_{0};\n"
               "void f() { hits_.fetch_add(1, std::memory_order_relaxed); }"
               "  // relaxed: stat counter\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(v, [])

    def test_preceding_comment_within_window_passes(self):
        src = ("std::atomic<int64_t> hits_{0};\n"
               "void f() {\n"
               "  // relaxed: stat counter, nothing ordered against it\n"
               "  hits_.fetch_add(1, std::memory_order_relaxed);\n"
               "}\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(v, [])

    def test_comment_too_far_above_fails(self):
        filler = "  int x%d = 0;\n"
        src = ("std::atomic<int64_t> hits_{0};\n"
               "// relaxed: too far away\n" +
               "".join(filler % i for i in range(lint.RATIONALE_WINDOW + 1)) +
               "void f() { hits_.fetch_add(1, std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["relaxed-rationale"])

    def test_multiline_call_with_comment_above_statement(self):
        src = ("std::atomic<int64_t> counts_[4];\n"
               "void f() {\n"
               "  // relaxed: bucket counters\n"
               "  counts_[0].fetch_add(\n"
               "      1, std::memory_order_relaxed);\n"
               "}\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(v, [])


class PointerAtomicDetection(unittest.TestCase):
    def test_nested_atomic_table_decl(self):
        names = lint.find_pointer_atomics(
            "std::atomic<std::atomic<Chunk*>*> table_{nullptr};\n")
        self.assertEqual(names, {"table_"})

    def test_value_atomic_not_pointer(self):
        names = lint.find_pointer_atomics(
            "std::atomic<int64_t> size_{0};\n"
            "std::atomic<uint64_t> epoch_{1};\n")
        self.assertEqual(names, set())

    def test_pointer_to_value_atomic_not_flagged(self):
        # std::atomic<int>* p — the atomic's VALUE is int, not a pointer.
        names = lint.find_pointer_atomics("std::atomic<int>* p = xs;\n")
        self.assertEqual(names, set())


LOCK_H = os.path.join("src", "txn", "lock_manager.h")
LOCK_CC = os.path.join("src", "txn", "lock_manager.cc")


class SlotExplicitOrderRule(unittest.TestCase):
    def test_flags_implicit_order_load_in_lock_header(self):
        src = ("std::atomic<int64_t> writer_state_{0};\n"
               "bool f() { return writer_state_.load() != 0; }\n")
        v = lint.lint_file(LOCK_H, src)
        self.assertEqual(rules(v), ["slot-explicit-order"])

    def test_flags_implicit_order_fetch_add_in_lock_cc(self):
        src = "void f() { writer_state_.fetch_add(1); }\n"
        v = lint.lint_file(LOCK_CC, src)
        self.assertEqual(rules(v), ["slot-explicit-order"])

    def test_explicit_seq_cst_passes(self):
        src = ("std::atomic<int64_t> writer_state_{0};\n"
               "bool f() {\n"
               "  return writer_state_.load(std::memory_order_seq_cst) != 0;\n"
               "}\n")
        v = lint.lint_file(LOCK_H, src)
        self.assertEqual(v, [])

    def test_multiline_call_with_order_on_next_line_passes(self):
        src = ("std::atomic<int64_t> v{0};\n"
               "bool f(int64_t e) {\n"
               "  return v.compare_exchange_strong(\n"
               "      e, 1, std::memory_order_seq_cst);\n"
               "}\n")
        v = lint.lint_file(LOCK_H, src)
        self.assertEqual(v, [])

    def test_relaxed_in_lock_file_still_needs_rationale(self):
        # Explicit relaxed satisfies rule 4 but falls through to rule 3.
        src = ("std::atomic<int64_t> v{0};\n"
               "void f() { v.fetch_add(1, std::memory_order_relaxed); }\n")
        v = lint.lint_file(LOCK_H, src)
        self.assertEqual(rules(v), ["relaxed-rationale"])

    def test_other_files_not_held_to_rule4(self):
        # Implicit (seq_cst-by-default) ops are fine outside the lock.
        src = ("std::atomic<int64_t> n_{0};\n"
               "void f() { n_.fetch_add(1); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(v, [])


class SlotEncapsulationRule(unittest.TestCase):
    def test_flags_slot_state_outside_lock_files(self):
        for member in ("slots_", "overflow_", "writer_state_"):
            with self.subTest(member=member):
                v = lint.lint_file(
                    "src/txn/txn_manager.cc",
                    "void f() { auto x = lock.%s; }\n" % member)
                self.assertEqual(rules(v), ["slot-encapsulation"])

    def test_lock_files_may_name_slot_state(self):
        v = lint.lint_file(
            LOCK_H, "std::array<PaddedSlot, 64> slots_;\n")
        self.assertEqual(v, [])

    def test_comment_mentions_do_not_trip(self):
        v = lint.lint_file(
            "src/foo.h", "// the lock drains slots_ before writing\n")
        self.assertEqual(v, [])

    def test_similar_identifiers_do_not_trip(self):
        # overflow_inserts etc. share a prefix but are different tokens.
        v = lint.lint_file(
            "src/foo.h",
            "int64_t overflow_inserts = 0;\n"
            "int64_t writer_state_machine = 0;\n"
            "int64_t my_slots_total = 0;\n")
        self.assertEqual(v, [])


class RepoIsClean(unittest.TestCase):
    def test_linting_the_repo_passes(self):
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(lint.__file__)))
        violations = []
        for rel in lint.collect_sources(root):
            with open(os.path.join(root, rel), encoding="utf-8") as fh:
                violations.extend(lint.lint_file(rel, fh.read()))
        self.assertEqual(violations, [])


if __name__ == "__main__":
    unittest.main()
