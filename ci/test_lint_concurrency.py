"""Unit tests for ci/lint_concurrency.py (run: python3 -m unittest)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_concurrency as lint


def rules(violations):
    return [v[2] for v in violations]


class NakedMutexRule(unittest.TestCase):
    def test_flags_raw_std_mutex(self):
        v = lint.lint_file("src/foo.h", "  std::mutex mu_;\n")
        self.assertEqual(rules(v), ["no-naked-mutex"])

    def test_flags_lock_guard_and_friends(self):
        for prim in ("std::lock_guard<std::mutex> l(mu_);",
                     "std::unique_lock<std::mutex> l(mu_);",
                     "std::scoped_lock l(a, b);",
                     "std::shared_lock l(mu_);",
                     "std::shared_mutex mu_;",
                     "std::condition_variable cv_;",
                     "std::condition_variable_any cv_;"):
            with self.subTest(prim=prim):
                v = lint.lint_file("src/foo.cc", prim + "\n")
                self.assertEqual(rules(v), ["no-naked-mutex"])

    def test_wrapper_header_is_exempt(self):
        v = lint.lint_file(os.path.join("src", "common", "mutex.h"),
                           "  std::mutex mu_;\n  std::shared_mutex s_;\n")
        self.assertEqual(v, [])

    def test_comments_do_not_trip(self):
        v = lint.lint_file("src/foo.h",
                           "// replaced std::mutex with pxq::Mutex\n")
        self.assertEqual(v, [])

    def test_block_comments_do_not_trip(self):
        v = lint.lint_file(
            "src/foo.h",
            "/* historical note:\n   std::mutex mu_;\n   was here */\n")
        self.assertEqual(v, [])

    def test_pxq_wrappers_are_fine(self):
        v = lint.lint_file("src/foo.h",
                           "  pxq::Mutex mu_;\n  MutexLock lock(&mu_);\n")
        self.assertEqual(v, [])


class RelaxedPointerRule(unittest.TestCase):
    def test_flags_relaxed_load_of_pointer_atomic(self):
        src = ("std::atomic<const Snap*> snap_{nullptr};\n"
               "void f() {\n"
               "  auto* s = snap_.load(std::memory_order_relaxed);\n"
               "}\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])

    def test_flags_relaxed_store_of_pointer_atomic(self):
        src = ("std::atomic<Node*> head_{nullptr};\n"
               "void g(Node* n) { head_.store(n, std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])

    def test_flags_indexed_atomic_table(self):
        src = ("std::atomic<Chunk*>* t = table();\n"
               "void h() { delete t[0].load(std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])

    def test_flags_multiline_relaxed_pointer_op(self):
        src = ("std::atomic<const Snap*> snap_{nullptr};\n"
               "void f() {\n"
               "  auto* s = snap_.load(\n"
               "      std::memory_order_relaxed);\n"
               "}\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])

    def test_acquire_pointer_load_is_fine(self):
        src = ("std::atomic<const Snap*> snap_{nullptr};\n"
               "void f() { auto* s = snap_.load(std::memory_order_acquire); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(v, [])

    def test_rationale_comment_does_not_excuse_pointer_relaxation(self):
        src = ("std::atomic<Node*> head_{nullptr};\n"
               "// relaxed: looks documented but is still forbidden\n"
               "void g() { head_.load(std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["no-relaxed-pointer"])


class RelaxedRationaleRule(unittest.TestCase):
    def test_flags_uncommented_relaxed_counter(self):
        src = ("std::atomic<int64_t> hits_{0};\n"
               "void f() { hits_.fetch_add(1, std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["relaxed-rationale"])

    def test_same_line_comment_passes(self):
        src = ("std::atomic<int64_t> hits_{0};\n"
               "void f() { hits_.fetch_add(1, std::memory_order_relaxed); }"
               "  // relaxed: stat counter\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(v, [])

    def test_preceding_comment_within_window_passes(self):
        src = ("std::atomic<int64_t> hits_{0};\n"
               "void f() {\n"
               "  // relaxed: stat counter, nothing ordered against it\n"
               "  hits_.fetch_add(1, std::memory_order_relaxed);\n"
               "}\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(v, [])

    def test_comment_too_far_above_fails(self):
        filler = "  int x%d = 0;\n"
        src = ("std::atomic<int64_t> hits_{0};\n"
               "// relaxed: too far away\n" +
               "".join(filler % i for i in range(lint.RATIONALE_WINDOW + 1)) +
               "void f() { hits_.fetch_add(1, std::memory_order_relaxed); }\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(rules(v), ["relaxed-rationale"])

    def test_multiline_call_with_comment_above_statement(self):
        src = ("std::atomic<int64_t> counts_[4];\n"
               "void f() {\n"
               "  // relaxed: bucket counters\n"
               "  counts_[0].fetch_add(\n"
               "      1, std::memory_order_relaxed);\n"
               "}\n")
        v = lint.lint_file("src/foo.h", src)
        self.assertEqual(v, [])


class PointerAtomicDetection(unittest.TestCase):
    def test_nested_atomic_table_decl(self):
        names = lint.find_pointer_atomics(
            "std::atomic<std::atomic<Chunk*>*> table_{nullptr};\n")
        self.assertEqual(names, {"table_"})

    def test_value_atomic_not_pointer(self):
        names = lint.find_pointer_atomics(
            "std::atomic<int64_t> size_{0};\n"
            "std::atomic<uint64_t> epoch_{1};\n")
        self.assertEqual(names, set())

    def test_pointer_to_value_atomic_not_flagged(self):
        # std::atomic<int>* p — the atomic's VALUE is int, not a pointer.
        names = lint.find_pointer_atomics("std::atomic<int>* p = xs;\n")
        self.assertEqual(names, set())


class RepoIsClean(unittest.TestCase):
    def test_linting_the_repo_passes(self):
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(lint.__file__)))
        violations = []
        for rel in lint.collect_sources(root):
            with open(os.path.join(root, rel), encoding="utf-8") as fh:
                violations.extend(lint.lint_file(rel, fh.read()))
        self.assertEqual(violations, [])


if __name__ == "__main__":
    unittest.main()
